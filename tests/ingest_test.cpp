// Generational KnowledgeBase + live ingestion tests: publish/pin semantics,
// the Ingestor's delta/upsert/refit lifecycle, the ChatBot curation hook,
// Snapshot persistence, the end-to-end live-enhancement proof (a fact only
// present in an ingested document becomes retrievable with no restart), and
// a swap-under-load stress test. Suite names (KnowledgeBase*, Ingest*,
// SnapshotPersist*) are part of the scripts/run_tsan.sh filter.

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bots/chat_bot.h"
#include "bots/mail.h"
#include "bots/platform.h"
#include "corpus/generator.h"
#include "corpus/questions.h"
#include "history/store.h"
#include "ingest/ingestor.h"
#include "llm/model_config.h"
#include "rag/knowledge_base.h"
#include "rag/retriever.h"
#include "rag/workflow.h"
#include "serve/server.h"
#include "util/clock.h"

namespace {

using namespace pkb;

// A tiny corpus: enough chunks that a one-document ingest stays under the
// default refit drift threshold.
text::VirtualDir small_corpus() {
  text::VirtualDir tree;
  for (int i = 0; i < 8; ++i) {
    std::string body = "# Guide " + std::to_string(i) + "\n\n";
    for (int p = 0; p < 6; ++p) {
      body += "Paragraph " + std::to_string(p) + " of guide " +
              std::to_string(i) +
              " discusses Krylov solvers, preconditioners, and convergence "
              "monitoring in enough words to form its own chunk after "
              "splitting. ";
      body += "\n\n";
    }
    tree.push_back({"guide/g" + std::to_string(i) + ".md", body});
  }
  return tree;
}

// The full generated PETSc corpus, rendered once per process.
const text::VirtualDir& full_corpus() {
  static const text::VirtualDir tree = corpus::generate_corpus();
  return tree;
}

bool any_chunk_contains(const rag::Snapshot& snap, std::string_view needle) {
  for (const text::Document& chunk : snap.chunks) {
    if (chunk.text.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool any_context_contains(const rag::RetrievalResult& result,
                          std::string_view needle) {
  for (const auto& ctx : result.contexts) {
    if (ctx.doc->text.find(needle) != std::string::npos) return true;
  }
  return false;
}

// --- KnowledgeBase: publish / pin semantics --------------------------------

TEST(KnowledgeBase, BuildIsGenerationOne) {
  const auto kb = rag::KnowledgeBase::build(small_corpus());
  EXPECT_EQ(kb.generation(), 1u);
  const rag::SnapshotPtr snap = kb.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->generation, 1u);
  EXPECT_EQ(snap->embedder_fit_generation, 1u);
  EXPECT_EQ(snap->chunks_at_fit, snap->chunks.size());
  EXPECT_EQ(snap->source_count, 8u);
  EXPECT_GT(snap->chunks.size(), 8u);  // every guide splits into chunks
  EXPECT_EQ(snap->store.size(), snap->chunks.size());
}

TEST(KnowledgeBase, PinnedSnapshotSurvivesPublish) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  const rag::SnapshotPtr pinned = kb.snapshot();
  const std::string first_chunk_text = pinned->chunks.front().text;
  const text::Document* first_chunk = &pinned->chunks.front();

  ingest::Ingestor ingestor(kb);
  ASSERT_NE(ingestor.ingest_files({{"guide/new.md", "# New\n\nNew text."}}),
            nullptr);
  EXPECT_EQ(kb.generation(), 2u);
  EXPECT_EQ(kb.snapshot()->generation, 2u);

  // The pinned generation is untouched: same pointer targets, same content.
  EXPECT_EQ(pinned->generation, 1u);
  EXPECT_EQ(&pinned->chunks.front(), first_chunk);
  EXPECT_EQ(first_chunk->text, first_chunk_text);
}

TEST(KnowledgeBase, PublishRequiresIncreasingGeneration) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  auto stale = std::make_shared<rag::Snapshot>(*kb.snapshot());
  // Same generation id as current → rejected.
  EXPECT_THROW((void)kb.publish(stale), std::logic_error);
  auto next = std::make_shared<rag::Snapshot>(*kb.snapshot());
  next->generation = 2;
  const double swap_seconds = kb.publish(next);
  EXPECT_GE(swap_seconds, 0.0);
  EXPECT_LT(swap_seconds, 1.0);
  EXPECT_EQ(kb.generation(), 2u);
}

TEST(KnowledgeBase, AdoptLoadedSnapshotConstructor) {
  auto built = rag::KnowledgeBase::build(small_corpus());
  rag::KnowledgeBase adopted(built.snapshot());
  EXPECT_EQ(adopted.generation(), 1u);
  EXPECT_EQ(adopted.chunks().size(), built.chunks().size());
}

// --- Ingestor: delta merge, upsert, refit, Q&A, vetted history -------------

TEST(Ingest, EmptyIngestIsANoOp) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  ingest::Ingestor ingestor(kb);
  EXPECT_EQ(ingestor.ingest_files({}), nullptr);
  EXPECT_EQ(kb.generation(), 1u);
  EXPECT_EQ(ingestor.stats().builds, 0u);
}

TEST(Ingest, DeltaBuildReusesEmbedderAndKeepsVectorsBitExact) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  const rag::SnapshotPtr base = kb.snapshot();
  ingest::Ingestor ingestor(kb);

  const rag::SnapshotPtr next = ingestor.ingest_files(
      {{"guide/delta.md", "# Delta\n\nOne small new document."}});
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->generation, 2u);

  // One small doc against 8 guides is under the refit threshold: the
  // embedder object is shared and the fit markers still point at gen 1.
  EXPECT_EQ(ingestor.stats().refits, 0u);
  EXPECT_EQ(next->embedder.get(), base->embedder.get());
  EXPECT_EQ(next->embedder_fit_generation, 1u);
  EXPECT_EQ(next->chunks_at_fit, base->chunks_at_fit);
  EXPECT_EQ(next->source_count, base->source_count + 1);

  // Retained chunks keep bit-identical vectors (copied, not re-embedded).
  ASSERT_GE(next->store.size(), base->store.size());
  for (std::size_t i = 0; i < base->store.size(); ++i) {
    EXPECT_EQ(next->store.doc(i).id, base->store.doc(i).id);
    EXPECT_EQ(next->store.vec(i), base->store.vec(i));
  }
  // Invariant: store row i embeds chunks[i].
  ASSERT_EQ(next->store.size(), next->chunks.size());
  for (std::size_t i = 0; i < next->chunks.size(); ++i) {
    EXPECT_EQ(next->store.doc(i).id, next->chunks[i].id);
  }
}

TEST(Ingest, ReingestingASourceReplacesItsChunks) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  ingest::Ingestor ingestor(kb);

  ASSERT_NE(ingestor.ingest_files({{"guide/topic.md",
                                    "# Topic\n\nOLDMARKER content v1."}}),
            nullptr);
  const rag::SnapshotPtr v1 = kb.snapshot();
  EXPECT_TRUE(any_chunk_contains(*v1, "OLDMARKER"));

  ASSERT_NE(ingestor.ingest_files({{"guide/topic.md",
                                    "# Topic\n\nNEWMARKER content v2."}}),
            nullptr);
  const rag::SnapshotPtr v2 = kb.snapshot();
  EXPECT_EQ(v2->generation, 3u);
  EXPECT_TRUE(any_chunk_contains(*v2, "NEWMARKER"));
  EXPECT_FALSE(any_chunk_contains(*v2, "OLDMARKER"));
  // Upsert, not append: the source count is unchanged by the update.
  EXPECT_EQ(v2->source_count, v1->source_count);
}

TEST(Ingest, LargeIngestTriggersRefit) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  const rag::SnapshotPtr base = kb.snapshot();
  ingest::Ingestor ingestor(kb);

  // Ingest as many documents as the whole base corpus: far past the default
  // 25% drift threshold.
  text::VirtualDir batch;
  for (int i = 0; i < 8; ++i) {
    std::string body = "# Extra " + std::to_string(i) + "\n\n";
    for (int p = 0; p < 6; ++p) {
      body += "Fresh paragraph " + std::to_string(p) +
              " with plenty of new vocabulary about nonlinear solvers and "
              "time integrators so the refit actually changes the fit. \n\n";
    }
    batch.push_back({"extra/e" + std::to_string(i) + ".md", body});
  }
  const rag::SnapshotPtr next = ingestor.ingest_files(batch);
  ASSERT_NE(next, nullptr);

  EXPECT_EQ(ingestor.stats().refits, 1u);
  EXPECT_NE(next->embedder.get(), base->embedder.get());
  EXPECT_EQ(next->embedder_fit_generation, next->generation);
  EXPECT_EQ(next->chunks_at_fit, next->chunks.size());
  // Re-embedded store still upholds the row invariant.
  ASSERT_EQ(next->store.size(), next->chunks.size());
}

TEST(Ingest, QaExchangeBecomesARetrievableDocument) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  ingest::Ingestor ingestor(kb);

  const rag::SnapshotPtr next = ingestor.ingest_qa(
      "resolved/thread-7.md", "Convergence of KSPWHIRL",
      "Why does KSPWHIRL stagnate on my Poisson problem?",
      "KSPWHIRL needs a stronger preconditioner; try PCGAMG.");
  ASSERT_NE(next, nullptr);
  EXPECT_TRUE(any_chunk_contains(*next, "KSPWHIRL"));
  bool found_source = false;
  for (const text::Document& chunk : next->chunks) {
    if (chunk.meta("source") == "resolved/thread-7.md") found_source = true;
  }
  EXPECT_TRUE(found_source);
}

TEST(Ingest, VettedHistorySelectsScoredAndTrustedRecordsOnce) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  ingest::Ingestor ingestor(kb);

  history::HistoryStore store;
  history::InteractionRecord good;
  good.question = "How do I monitor residuals?";
  good.response = "Use GOODANSWER -ksp_monitor.";
  good.model = "sim-gpt-4o";
  const auto good_id = store.add(good);
  store.record_score(good_id, {"barry", 4, ""});

  history::InteractionRecord bad;
  bad.question = "What about BADANSWER?";
  bad.response = "BADANSWER hallucinated text.";
  bad.model = "sim-gpt-4o";
  store.record_score(store.add(bad), {"barry", 1, ""});

  history::InteractionRecord human;
  human.question = "Human wisdom?";
  human.response = "HUMANANSWER from a developer.";
  human.model = "";  // human-authored, unscored
  store.add(human);

  history::InteractionRecord empty;
  empty.question = "Unanswered?";
  empty.response = "";
  store.add(empty);

  const rag::SnapshotPtr next = ingestor.ingest_vetted_history(store);
  ASSERT_NE(next, nullptr);
  EXPECT_TRUE(any_chunk_contains(*next, "GOODANSWER"));
  EXPECT_TRUE(any_chunk_contains(*next, "HUMANANSWER"));
  EXPECT_FALSE(any_chunk_contains(*next, "BADANSWER"));

  // Already-ingested records do not build another generation.
  EXPECT_EQ(ingestor.ingest_vetted_history(store), nullptr);
  EXPECT_EQ(kb.generation(), 2u);

  // A newly vetted record does.
  history::InteractionRecord late;
  late.question = "Late question?";
  late.response = "LATEANSWER now vetted.";
  late.model = "sim-gpt-4o";
  store.record_score(store.add(late), {"jed", 4, ""});
  const rag::SnapshotPtr gen3 = ingestor.ingest_vetted_history(store);
  ASSERT_NE(gen3, nullptr);
  EXPECT_TRUE(any_chunk_contains(*gen3, "LATEANSWER"));
}

// --- ChatBot: the Fig-5 curation loop --------------------------------------

TEST(Ingest, ChatBotSendIngestsTheResolvedThread) {
  auto kb = rag::KnowledgeBase::build(full_corpus());
  rag::AugmentedWorkflow workflow(kb, rag::PipelineArm::RagRerank,
                                  llm::model_config("sim-gpt-4o"));
  ingest::Ingestor ingestor(kb);

  util::SimClock clock;
  bots::DiscordServer server(&clock);
  server.create_channel("petsc-users-emails", bots::ChannelKind::Forum, true);
  server.join("barry", /*is_developer=*/true);
  bots::MailingList list("petsc-users@mcs.anl.gov", &clock);

  bots::ChatBot bot(&workflow, &server, &list, "petsc-users-emails",
                    "petscbot@gmail.com");
  bot.attach_ingestor(&ingestor);

  const std::uint64_t post_id =
      server.create_post("petsc-users-emails", "rectangular systems");
  server.add_to_post("petsc-users-emails", post_id, "user@univ.edu",
                     "Can I use KSP to solve a rectangular system?");

  const auto draft_id = bot.handle_reply_command(post_id, "barry");
  ASSERT_TRUE(draft_id.has_value());
  EXPECT_EQ(kb.generation(), 1u);  // drafting alone ingests nothing

  ASSERT_EQ(bot.press_send(*draft_id, "barry"), bots::ButtonResult::Ok);
  EXPECT_EQ(bot.threads_ingested(), 1u);
  EXPECT_EQ(kb.generation(), 2u);
  // The resolved thread is now a corpus document.
  const rag::SnapshotPtr snap = kb.snapshot();
  bool found = false;
  for (const text::Document& chunk : snap->chunks) {
    if (chunk.meta("source") ==
        "resolved/thread-" + std::to_string(post_id) + ".md") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Discard never ingests: safety invariant is send-only.
  EXPECT_EQ(ingestor.stats().builds, 1u);
}

// --- Snapshot persistence ---------------------------------------------------

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SnapshotPersist, RoundTripIsRetrievalIdentical) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  const rag::SnapshotPtr orig = kb.snapshot();
  const std::string path = temp_path("pkb_snapshot_rt.bin");
  orig->save(path);
  const rag::SnapshotPtr loaded = rag::Snapshot::load(path);
  std::filesystem::remove(path);

  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->generation, orig->generation);
  EXPECT_EQ(loaded->source_count, orig->source_count);
  EXPECT_EQ(loaded->embedder_fit_generation, orig->embedder_fit_generation);
  ASSERT_EQ(loaded->chunks.size(), orig->chunks.size());
  for (std::size_t i = 0; i < orig->chunks.size(); ++i) {
    EXPECT_EQ(loaded->chunks[i], orig->chunks[i]);
  }
  // Fit-consistent snapshot: stored vectors survive bit-exactly.
  ASSERT_EQ(loaded->store.size(), orig->store.size());
  for (std::size_t i = 0; i < orig->store.size(); ++i) {
    EXPECT_EQ(loaded->store.vec(i), orig->store.vec(i));
  }

  // A retrieval against the loaded snapshot matches one against the
  // original, content for content.
  rag::KnowledgeBase reloaded(loaded);
  rag::Retriever r_orig(kb), r_loaded(reloaded);
  const auto a = r_orig.retrieve("How do I monitor Krylov convergence?");
  const auto b = r_loaded.retrieve("How do I monitor Krylov convergence?");
  ASSERT_EQ(a.contexts.size(), b.contexts.size());
  for (std::size_t i = 0; i < a.contexts.size(); ++i) {
    EXPECT_EQ(a.contexts[i].doc->id, b.contexts[i].doc->id);
    EXPECT_DOUBLE_EQ(a.contexts[i].score, b.contexts[i].score);
  }
}

TEST(SnapshotPersist, DeltaGenerationReloadsAsItsOwnFit) {
  auto kb = rag::KnowledgeBase::build(small_corpus());
  ingest::Ingestor ingestor(kb);
  const rag::SnapshotPtr delta = ingestor.ingest_files(
      {{"guide/delta.md", "# Delta\n\nPERSISTMARKER paragraph."}});
  ASSERT_NE(delta, nullptr);
  ASSERT_LT(delta->embedder_fit_generation, delta->generation);

  const std::string path = temp_path("pkb_snapshot_delta.bin");
  delta->save(path);
  const rag::SnapshotPtr loaded = rag::Snapshot::load(path);
  std::filesystem::remove(path);

  // The delta's fit corpus (gen-1 chunks) is not in the file, so the load
  // refits on its own chunk list and re-embeds.
  EXPECT_EQ(loaded->generation, delta->generation);
  EXPECT_EQ(loaded->embedder_fit_generation, loaded->generation);
  ASSERT_EQ(loaded->chunks.size(), delta->chunks.size());
  EXPECT_TRUE(any_chunk_contains(*loaded, "PERSISTMARKER"));
  // Still a coherent store (row invariant), usable for retrieval.
  ASSERT_EQ(loaded->store.size(), loaded->chunks.size());
  rag::KnowledgeBase reloaded(loaded);
  rag::Retriever r(reloaded);
  EXPECT_FALSE(r.retrieve("PERSISTMARKER paragraph").contexts.empty());
}

TEST(SnapshotPersist, RejectsMissingGarbageAndTruncatedFiles) {
  EXPECT_THROW((void)rag::Snapshot::load("/nonexistent/snap.bin"),
               std::runtime_error);

  const std::string garbage = temp_path("pkb_snapshot_garbage.bin");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "definitely not a snapshot";
  }
  EXPECT_THROW((void)rag::Snapshot::load(garbage), std::runtime_error);
  std::filesystem::remove(garbage);

  // Truncate a real snapshot at several prefixes: every cut must throw.
  auto kb = rag::KnowledgeBase::build(small_corpus());
  const std::string path = temp_path("pkb_snapshot_trunc.bin");
  kb.snapshot()->save(path);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  for (std::size_t len :
       {std::size_t{3}, std::size_t{16}, bytes.size() / 4, bytes.size() / 2,
        bytes.size() - 1}) {
    ASSERT_LT(len, bytes.size());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_THROW((void)rag::Snapshot::load(path), std::runtime_error)
        << "prefix length " << len;
  }
  std::filesystem::remove(path);
}

// --- E2E: live enhancement through a running server -------------------------

TEST(Ingest, LiveEnhancementWithoutRestart) {
  auto kb = rag::KnowledgeBase::build(full_corpus());
  rag::AugmentedWorkflow workflow(kb, rag::PipelineArm::RagRerank,
                                  llm::model_config("sim-gpt-4o"));
  serve::ServerOptions opts;
  opts.workers = 2;
  serve::Server server(workflow, opts);
  // A brand-new solver name is out-of-vocabulary for the gen-1 embedder, so
  // this ingestor refits on every build (threshold 0) — the configuration
  // for corpora whose ingests carry novel terminology.
  ingest::IngestorOptions ingest_opts;
  ingest_opts.refit_drift_threshold = 0.0;
  ingest::Ingestor ingestor(kb, ingest_opts);

  // KSPBurb is the paper's fictitious §V-B solver: by construction no
  // generated document mentions it.
  const std::string question = corpus::kspburb_question().question;
  ASSERT_FALSE(any_chunk_contains(*kb.snapshot(), "KSPBurb"));

  const auto before = server.ask(question);
  EXPECT_EQ(before.generation, 1u);
  EXPECT_FALSE(any_context_contains(before.retrieval, "KSPBurb"));

  // Somebody documents the solver; the ingestor publishes generation 2
  // while the server keeps running.
  ASSERT_NE(ingestor.ingest_files(
                {{"manualpages/KSP/KSPBurb.md",
                  "# KSPBurb\n\nKSPBurb is a pipelined biconjugate gradient "
                  "variant. KSPBurb is selected with -ksp_type burb; KSPBurb "
                  "pairs well with PCJACOBI for well-conditioned systems.\n"}}),
            nullptr);
  EXPECT_EQ(kb.generation(), 2u);

  // Same server, same question: the cached gen-1 answer is detected stale,
  // the pipeline reruns on the new generation, and the new document is
  // retrieved. No restart happened.
  const auto after = server.ask(question);
  EXPECT_EQ(after.generation, 2u);
  EXPECT_TRUE(any_context_contains(after.retrieval, "KSPBurb"));
  // And the recomputed answer replaced the stale cache entry: a repeat is a
  // fresh-generation cache hit with the same content.
  const auto repeat = server.ask(question);
  EXPECT_EQ(repeat.generation, 2u);
  EXPECT_EQ(repeat.response.text, after.response.text);
}

// --- Stress: publishes racing a serving fleet -------------------------------

TEST(IngestStress, SwapUnderServingLoad) {
  auto kb = rag::KnowledgeBase::build(full_corpus());
  rag::AugmentedWorkflow workflow(kb, rag::PipelineArm::RagRerank,
                                  llm::model_config("sim-gpt-4o"));
  serve::ServerOptions opts;
  opts.workers = 4;
  opts.answer_cache_capacity = 64;
  serve::Server server(workflow, opts);
  ingest::Ingestor ingestor(kb);

  constexpr int kGenerations = 6;
  constexpr int kClients = 4;
  constexpr int kAsksPerClient = 24;

  const auto& bench = corpus::krylov_benchmark();
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kAsksPerClient; ++i) {
        const auto& q =
            bench[(c * kAsksPerClient + i) % bench.size()].question;
        const rag::WorkflowOutcome out = server.ask(q);
        // Never torn: the outcome is internally consistent — its stamped
        // generation is exactly its pinned snapshot's, every context points
        // into that snapshot, and the generation is one that existed.
        if (out.generation != out.retrieval.generation() ||
            out.generation < 1 ||
            out.generation > 1 + static_cast<std::uint64_t>(kGenerations) ||
            out.response.text.empty()) {
          failed.store(true);
        }
        for (const auto& ctx : out.retrieval.contexts) {
          if (ctx.doc == nullptr || ctx.doc->text.empty()) failed.store(true);
        }
      }
    });
  }

  for (int g = 0; g < kGenerations; ++g) {
    ASSERT_NE(ingestor.ingest_files(
                  {{"stress/doc" + std::to_string(g) + ".md",
                    "# Stress " + std::to_string(g) +
                        "\n\nStress document number " + std::to_string(g) +
                        " for the swap-under-load test.\n"}}),
              nullptr);
  }

  for (auto& t : clients) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(kb.generation(), 1u + kGenerations);
  EXPECT_EQ(ingestor.swap_history().size(), static_cast<std::size_t>(kGenerations));
  for (double s : ingestor.swap_history()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 0.1);  // a swap is a pointer exchange, not a rebuild
  }
}

}  // namespace
