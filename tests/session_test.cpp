// Multi-turn session serving tests: the SessionPromptContext hooks in the
// stage graph (retrieval-memory dedup, history attachment, generation
// staleness), the SessionManager's affinity lanes and conversation state,
// the four-rung admission/shed order, memory invalidation across live
// ingest generation swaps, and capacity/idle eviction. Suite names all
// start with `Session` so scripts/run_tsan.sh picks them up.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ingest/ingestor.h"
#include "llm/model_config.h"
#include "rag/knowledge_base.h"
#include "rag/stages.h"
#include "rag/workflow.h"
#include "resilience/resilience.h"
#include "serve/server.h"
#include "serve/session.h"
#include "text/document.h"

namespace {

using namespace pkb;
using serve::Admission;
using serve::Server;
using serve::ServerOptions;
using serve::SessionManager;
using serve::SessionOptions;
using serve::TurnOutcome;

// A tiny corpus: enough chunks for retrieval to return a full context set,
// small enough that KnowledgeBase::build stays fast per test.
text::VirtualDir session_corpus() {
  text::VirtualDir tree;
  for (int i = 0; i < 8; ++i) {
    std::string body = "# Guide " + std::to_string(i) + "\n\n";
    for (int p = 0; p < 6; ++p) {
      body += "Paragraph " + std::to_string(p) + " of guide " +
              std::to_string(i) +
              " discusses Krylov solvers, preconditioners, and convergence "
              "monitoring in enough words to form its own chunk after "
              "splitting. ";
      body += "\n\n";
    }
    tree.push_back({"guide/g" + std::to_string(i) + ".md", body});
  }
  return tree;
}

constexpr const char* kQuestion =
    "How do I monitor convergence of a Krylov solver?";

// Spin until `pred` holds or ~2 s elapse; returns whether it held. Used to
// wait out lane-worker scheduling without fixed sleeps.
template <typename Pred>
bool wait_for(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// --- SessionPromptContext through the workflow directly --------------------

class SessionPromptTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new rag::KnowledgeBase(rag::KnowledgeBase::build(session_corpus()));
    workflow_ = new rag::AugmentedWorkflow(*kb_, rag::PipelineArm::RagRerank,
                                           llm::model_config("sim-gpt-4o"));
  }
  static rag::KnowledgeBase* kb_;
  static rag::AugmentedWorkflow* workflow_;
};

rag::KnowledgeBase* SessionPromptTest::kb_ = nullptr;
rag::AugmentedWorkflow* SessionPromptTest::workflow_ = nullptr;

TEST_F(SessionPromptTest, FirstTurnRecordsAttachedContextIds) {
  std::unordered_set<std::string> seen;
  rag::SessionPromptContext session;
  session.seen_context_ids = &seen;
  session.memory_generation = kb_->generation();
  const rag::WorkflowOutcome out =
      workflow_->ask(kQuestion, nullptr, nullptr, &session);
  EXPECT_FALSE(session.memory_stale);
  EXPECT_EQ(session.deduped, 0u);  // nothing seen yet
  EXPECT_FALSE(session.attached_context_ids.empty());
  EXPECT_EQ(session.attached_context_ids.size(), out.retrieval.contexts.size());
}

TEST_F(SessionPromptTest, SecondTurnDedupsSeenContexts) {
  std::unordered_set<std::string> seen;
  rag::SessionPromptContext first;
  first.seen_context_ids = &seen;
  first.memory_generation = kb_->generation();
  const rag::WorkflowOutcome a =
      workflow_->ask(kQuestion, nullptr, nullptr, &first);
  seen.insert(first.attached_context_ids.begin(),
              first.attached_context_ids.end());

  rag::SessionPromptContext second;
  second.seen_context_ids = &seen;
  second.memory_generation = kb_->generation();
  const rag::WorkflowOutcome b =
      workflow_->ask(kQuestion, nullptr, nullptr, &second);
  EXPECT_FALSE(second.memory_stale);
  // The identical question retrieves the identical contexts: every one of
  // them is already in the session memory and is dropped from the prompt.
  EXPECT_EQ(second.deduped, first.attached_context_ids.size());
  EXPECT_TRUE(second.attached_context_ids.empty());
  EXPECT_NE(a.prompt, b.prompt);  // the deduped prompt carries no contexts
}

TEST_F(SessionPromptTest, GenerationMismatchDisablesDedupAndFlagsStale) {
  std::unordered_set<std::string> seen;
  rag::SessionPromptContext first;
  first.seen_context_ids = &seen;
  first.memory_generation = kb_->generation();
  (void)workflow_->ask(kQuestion, nullptr, nullptr, &first);
  seen.insert(first.attached_context_ids.begin(),
              first.attached_context_ids.end());

  rag::SessionPromptContext stale;
  stale.seen_context_ids = &seen;
  stale.memory_generation = kb_->generation() + 7;  // memory from elsewhere
  const rag::WorkflowOutcome out =
      workflow_->ask(kQuestion, nullptr, nullptr, &stale);
  EXPECT_TRUE(stale.memory_stale);
  EXPECT_EQ(stale.deduped, 0u);  // stale memory must not drop anything
  EXPECT_EQ(stale.attached_context_ids.size(), out.retrieval.contexts.size());
}

TEST_F(SessionPromptTest, HistoryContextsAreAppendedToThePrompt) {
  const std::vector<llm::ContextDoc> history{
      {"session:s1:turn:1", "Earlier in this conversation",
       "Q: What is GMRES?\nA: A Krylov method.", 0.0}};
  rag::SessionPromptContext session;
  session.history_contexts = &history;
  const rag::WorkflowOutcome out =
      workflow_->ask(kQuestion, nullptr, nullptr, &session);
  EXPECT_EQ(session.history_attached, 1u);
  EXPECT_NE(out.prompt.find("What is GMRES?"), std::string::npos);
}

// --- SessionManager: conversation state over a Server ----------------------

class SessionManagerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new rag::KnowledgeBase(rag::KnowledgeBase::build(session_corpus()));
    workflow_ = new rag::AugmentedWorkflow(*kb_, rag::PipelineArm::RagRerank,
                                           llm::model_config("sim-gpt-4o"));
  }
  static rag::KnowledgeBase* kb_;
  static rag::AugmentedWorkflow* workflow_;
};

rag::KnowledgeBase* SessionManagerTest::kb_ = nullptr;
rag::AugmentedWorkflow* SessionManagerTest::workflow_ = nullptr;

TEST_F(SessionManagerTest, MultiTurnDedupsAndCarriesHistory) {
  Server server(*workflow_, {});
  SessionManager manager(server, {});
  const TurnOutcome t1 = manager.ask("chat", kQuestion);
  const TurnOutcome t2 = manager.ask("chat", kQuestion);
  const TurnOutcome t3 = manager.ask("chat", kQuestion);
  EXPECT_EQ(t1.turn, 1u);
  EXPECT_EQ(t2.turn, 2u);
  EXPECT_EQ(t3.turn, 3u);
  EXPECT_EQ(t1.deduped_contexts, 0u);
  EXPECT_GT(t2.deduped_contexts, 0u);  // same question, contexts remembered
  EXPECT_GT(t3.deduped_contexts, 0u);
  EXPECT_EQ(t1.history_contexts, 0u);
  EXPECT_EQ(t2.history_contexts, 1u);  // turn 1 replayed
  EXPECT_EQ(t3.history_contexts, 2u);  // turns 1+2 replayed
  EXPECT_NE(t2.outcome.prompt.find(kQuestion), std::string::npos);
  const SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.sessions_created, 1u);
  EXPECT_GT(stats.dedup_dropped, 0u);
}

TEST_F(SessionManagerTest, HistoryIsCappedAtMaxHistoryTurns) {
  Server server(*workflow_, {});
  SessionOptions opts;
  opts.max_history_turns = 2;
  SessionManager manager(server, opts);
  TurnOutcome last;
  for (int i = 0; i < 5; ++i) last = manager.ask("chat", kQuestion);
  EXPECT_EQ(last.turn, 5u);
  EXPECT_EQ(last.history_contexts, 2u);  // only the most recent 2 replayed
}

TEST_F(SessionManagerTest, LaneAffinityIsStableAndInRange) {
  Server server(*workflow_, {});
  SessionOptions opts;
  opts.lanes = 4;
  SessionManager manager(server, opts);
  for (int i = 0; i < 16; ++i) {
    const std::string id = "session-" + std::to_string(i);
    const std::size_t lane = manager.lane_of(id);
    EXPECT_LT(lane, opts.lanes);
    EXPECT_EQ(lane, manager.lane_of(id));  // stable per id
  }
}

TEST_F(SessionManagerTest, AnswerCacheIsBypassedBothDirections) {
  ServerOptions sopts;
  sopts.workers = 1;
  Server server(*workflow_, sopts);
  SessionManager manager(server, {});
  (void)manager.ask("chat", kQuestion);
  (void)manager.ask("chat", kQuestion);
  // Both turns computed: a session turn never hits the answer cache (its
  // prompt depends on session state) and never populates it either.
  EXPECT_EQ(server.stats().computed, 2u);
  EXPECT_EQ(server.stats().answer_cache.hits, 0u);
  const rag::WorkflowOutcome plain = server.ask(kQuestion);
  EXPECT_EQ(server.stats().computed, 3u);  // still a miss for plain traffic
  EXPECT_FALSE(plain.response.text.empty());
}

TEST_F(SessionManagerTest, SubmitAfterStopResolvesShed) {
  Server server(*workflow_, {});
  SessionManager manager(server, {});
  manager.stop();
  std::future<TurnOutcome> f = manager.submit("chat", kQuestion);
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_TRUE(f.get().shed());
}

// --- Admission and the shed order ------------------------------------------

class SessionAdmissionTest : public SessionManagerTest {};

TEST_F(SessionAdmissionTest, ShedsSessionOverInflightCap) {
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.answer_cache_capacity = 0;
  sopts.llm_latency_scale = 0.02;  // turns take real tens of milliseconds
  Server server(*workflow_, sopts);
  SessionOptions opts;
  opts.lanes = 1;
  opts.lane_queue_capacity = 8;
  opts.max_inflight_per_session = 1;
  opts.new_session_shed_fraction = 0.0;  // isolate the inflight rung
  SessionManager manager(server, opts);
  std::future<TurnOutcome> running = manager.submit("greedy", kQuestion);
  // The first turn is inflight (queued or executing); the cap is 1, so the
  // second turn of the same session is shed before any queue check.
  std::future<TurnOutcome> second = manager.submit("greedy", kQuestion);
  ASSERT_EQ(second.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const TurnOutcome shed = second.get();
  EXPECT_EQ(shed.admission, Admission::ShedSessionInflight);
  // A different session is not over its cap and is admitted.
  std::future<TurnOutcome> other = manager.submit("polite", kQuestion);
  const TurnOutcome first = running.get();
  EXPECT_FALSE(first.shed());
  EXPECT_FALSE(other.get().shed());
  EXPECT_EQ(manager.stats().shed_session_inflight, 1u);
}

TEST_F(SessionAdmissionTest, ShedsWhenLaneQueueExactlyFull) {
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.answer_cache_capacity = 0;
  sopts.llm_latency_scale = 0.02;
  Server server(*workflow_, sopts);
  SessionOptions opts;
  opts.lanes = 1;
  opts.lane_queue_capacity = 1;
  opts.max_inflight_per_session = 8;     // keep the inflight rung out of it
  opts.new_session_shed_fraction = 0.0;  // and the watermark rung too
  SessionManager manager(server, opts);
  std::future<TurnOutcome> running = manager.submit("chat", kQuestion);
  // Wait for the lane worker to pop the first turn: it is now executing a
  // multi-ms simulated LLM stall and the queue is empty again.
  ASSERT_TRUE(wait_for([&] { return manager.stats().queue_depth == 0; }));
  std::future<TurnOutcome> queued = manager.submit("chat", kQuestion);
  // Depth is exactly at capacity (1): the next submit must shed, typed.
  std::future<TurnOutcome> extra = manager.submit("chat", kQuestion);
  ASSERT_EQ(extra.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const TurnOutcome shed = extra.get();
  EXPECT_EQ(shed.admission, Admission::ShedQueueFull);
  EXPECT_TRUE(shed.shed());
  EXPECT_FALSE(running.get().shed());
  EXPECT_FALSE(queued.get().shed());
  EXPECT_EQ(manager.stats().shed_queue_full, 1u);
}

TEST_F(SessionAdmissionTest, ShedsNewSessionsBeforeExistingOnes) {
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.answer_cache_capacity = 0;
  sopts.llm_latency_scale = 0.02;
  Server server(*workflow_, sopts);
  SessionOptions opts;
  opts.lanes = 1;
  opts.lane_queue_capacity = 4;
  opts.max_inflight_per_session = 8;
  opts.new_session_shed_fraction = 0.25;  // watermark: depth >= 1
  SessionManager manager(server, opts);
  std::future<TurnOutcome> running = manager.submit("old", kQuestion);
  ASSERT_TRUE(wait_for([&] { return manager.stats().queue_depth == 0; }));
  std::future<TurnOutcome> queued = manager.submit("old", kQuestion);
  // Depth 1 is at the watermark but under capacity: a turn that would
  // CREATE a session is shed while the existing session is still admitted.
  std::future<TurnOutcome> newcomer = manager.submit("newcomer", kQuestion);
  ASSERT_EQ(newcomer.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(newcomer.get().admission, Admission::ShedNewSession);
  std::future<TurnOutcome> existing = manager.submit("old", kQuestion);
  EXPECT_FALSE(running.get().shed());
  EXPECT_FALSE(queued.get().shed());
  EXPECT_FALSE(existing.get().shed());
  const SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.shed_new_session, 1u);
  EXPECT_EQ(stats.sessions_created, 1u);  // the newcomer was never created
}

TEST_F(SessionAdmissionTest, ShedsOnEstimatedDeadlineFromTheFirstTurn) {
  Server server(*workflow_, {});
  SessionOptions opts;
  opts.lanes = 1;
  opts.admission_deadline_seconds = 0.05;
  opts.initial_turn_seconds_estimate = 0.2;  // 0.2 * 1 > 0.05: shed at once
  SessionManager manager(server, opts);
  std::future<TurnOutcome> f = manager.submit("chat", kQuestion);
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get().admission, Admission::ShedDeadline);
  EXPECT_EQ(manager.stats().shed_deadline, 1u);
  EXPECT_EQ(manager.stats().sessions_created, 0u);
}

TEST_F(SessionAdmissionTest, ShedTurnCarriesTypedOverloadAnswer) {
  Server server(*workflow_, {});
  SessionOptions opts;
  opts.admission_deadline_seconds = 0.01;
  opts.initial_turn_seconds_estimate = 1.0;
  SessionManager manager(server, opts);
  const TurnOutcome out = manager.ask("chat", kQuestion);
  EXPECT_TRUE(out.shed());
  EXPECT_EQ(out.admission, Admission::ShedDeadline);
  EXPECT_EQ(out.outcome.degradation, resilience::DegradationLevel::Unavailable);
  EXPECT_EQ(out.outcome.response.mode, "shed-overload");
  EXPECT_NE(out.outcome.response.text.find("[overload]"), std::string::npos);
  EXPECT_NE(out.outcome.response.text.find(
                serve::to_string(Admission::ShedDeadline)),
            std::string::npos);
  EXPECT_EQ(out.turn_seconds, 0.0);
}

// --- Retrieval memory across live ingest generation swaps ------------------

TEST(SessionMemory, GenerationSwapInvalidatesAndRebuildsDedupMemory) {
  auto kb = rag::KnowledgeBase::build(session_corpus());
  rag::AugmentedWorkflow workflow(kb, rag::PipelineArm::RagRerank,
                                  llm::model_config("sim-gpt-4o"));
  Server server(workflow, {});
  SessionManager manager(server, {});
  const TurnOutcome t1 = manager.ask("chat", kQuestion);
  EXPECT_EQ(t1.outcome.generation, 1u);
  EXPECT_EQ(t1.deduped_contexts, 0u);

  // A live ingest publishes generation 2: chunk ids from generation 1 no
  // longer describe the current corpus, so the session memory must not be
  // trusted for dedup on the next turn.
  ingest::Ingestor ingestor(kb);
  ASSERT_NE(ingestor.ingest_files({{"guide/new.md", "# New\n\nNew text."}}),
            nullptr);
  ASSERT_EQ(kb.generation(), 2u);

  const TurnOutcome t2 = manager.ask("chat", kQuestion);
  EXPECT_EQ(t2.outcome.generation, 2u);
  EXPECT_EQ(t2.deduped_contexts, 0u);  // stale memory dropped, not applied
  EXPECT_EQ(manager.stats().memory_invalidations, 1u);

  // The memory was rebuilt against generation 2: dedup works again.
  const TurnOutcome t3 = manager.ask("chat", kQuestion);
  EXPECT_GT(t3.deduped_contexts, 0u);
  EXPECT_EQ(manager.stats().memory_invalidations, 1u);
}

// --- Eviction: capacity LRU and idle TTL -----------------------------------

class SessionEvictionTest : public SessionManagerTest {};

TEST_F(SessionEvictionTest, CapacityEvictsLeastRecentlyActive) {
  Server server(*workflow_, {});
  SessionOptions opts;
  opts.max_sessions = 1;
  opts.new_session_shed_fraction = 0.0;  // don't shed the second session
  SessionManager manager(server, opts);
  (void)manager.ask("first", kQuestion);
  (void)manager.ask("second", kQuestion);  // evicts "first"
  SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.sessions_created, 2u);
  EXPECT_EQ(stats.sessions_evicted, 1u);
  EXPECT_EQ(stats.active_sessions, 1u);
  // "first" lost its state: a new turn starts a fresh session at turn 1.
  const TurnOutcome back = manager.ask("first", kQuestion);
  EXPECT_EQ(back.turn, 1u);
  EXPECT_EQ(manager.stats().sessions_created, 3u);
}

TEST_F(SessionEvictionTest, EvictionWhileTurnInFlightIsSafe) {
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.answer_cache_capacity = 0;
  sopts.llm_latency_scale = 0.02;
  Server server(*workflow_, sopts);
  SessionOptions opts;
  opts.lanes = 1;
  opts.max_sessions = 1;
  opts.new_session_shed_fraction = 0.0;
  SessionManager manager(server, opts);
  std::future<TurnOutcome> inflight = manager.submit("victim", kQuestion);
  // Admitting "usurper" evicts "victim" while its turn may still be
  // executing; the turn holds a shared_ptr and completes normally.
  std::future<TurnOutcome> usurper = manager.submit("usurper", kQuestion);
  const TurnOutcome a = inflight.get();
  const TurnOutcome b = usurper.get();
  EXPECT_FALSE(a.shed());
  EXPECT_FALSE(b.shed());
  EXPECT_FALSE(a.outcome.response.text.empty());
  EXPECT_FALSE(b.outcome.response.text.empty());
  EXPECT_EQ(manager.stats().sessions_evicted, 1u);
}

TEST_F(SessionEvictionTest, IdleTtlEvictsOnNextSubmit) {
  Server server(*workflow_, {});
  auto fake_now = std::make_shared<std::atomic<double>>(0.0);
  SessionOptions opts;
  opts.session_idle_ttl_seconds = 10.0;
  opts.new_session_shed_fraction = 0.0;
  opts.clock = [fake_now] { return fake_now->load(); };
  SessionManager manager(server, opts);
  (void)manager.ask("sleepy", kQuestion);
  fake_now->store(100.0);  // well past the TTL
  (void)manager.ask("fresh", kQuestion);  // sweep runs on this submit
  SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.sessions_evicted, 1u);
  EXPECT_EQ(stats.active_sessions, 1u);
  // "sleepy" restarts from scratch.
  EXPECT_EQ(manager.ask("sleepy", kQuestion).turn, 1u);
}

}  // namespace
