// Record/replay subsystem tests: trace persistence round-trips, recorder
// sampling, serve-layer wiring, and the time-travel replay contract —
// replay-from-Generate runs zero retrieval work and reproduces the
// recorded answer bit for bit; parameter overrides move the cut upstream
// and produce a diff report. Suite names (TraceRecorder*/Replay*) are part
// of the scripts/run_tsan.sh filter.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "llm/model_config.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "rag/stage_graph.h"
#include "rag/workflow.h"
#include "replay/replay.h"
#include "replay/trace.h"
#include "resilience/fault_plan.h"
#include "serve/server.h"

namespace {

using namespace pkb;
namespace fs = std::filesystem;
namespace res = pkb::resilience;
using replay::ReplayEngine;
using replay::ReplayOverrides;
using replay::ReplayResult;
using replay::TraceRecorder;
using StageKind = rag::StageKind;

const std::string kQuestion =
    "Which Krylov method should I use for a symmetric positive definite "
    "matrix?";

/// Fresh per-test trace directory under the system temp dir.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

class ReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new rag::KnowledgeBase(
        rag::KnowledgeBase::build(corpus::generate_corpus()));
  }
  static std::unique_ptr<rag::AugmentedWorkflow> make_workflow(
      rag::RetrieverOptions opts = {}) {
    return std::make_unique<rag::AugmentedWorkflow>(
        *kb_, rag::PipelineArm::RagRerank, llm::model_config("sim-gpt-4o"),
        std::move(opts));
  }
  static rag::StageTrace record_one(const std::string& question,
                                    rag::RetrieverOptions opts = {}) {
    auto workflow = make_workflow(std::move(opts));
    rag::StageTrace trace;
    (void)workflow->ask(question, nullptr, &trace);
    return trace;
  }
  static rag::KnowledgeBase* kb_;
};

rag::KnowledgeBase* ReplayTest::kb_ = nullptr;

// --- persistence ----------------------------------------------------------

TEST_F(ReplayTest, TraceRecorderRoundTrip) {
  const std::string dir = fresh_dir("pkb_replay_roundtrip");
  rag::StageTrace trace = record_one(kQuestion);
  replay::RecorderOptions opts;
  opts.dir = dir;
  TraceRecorder recorder(opts);
  const std::uint64_t id = recorder.record(trace);
  ASSERT_EQ(id, 1u);

  const rag::StageTrace loaded =
      TraceRecorder::load(TraceRecorder::trace_path(dir, id));
  EXPECT_EQ(loaded.id, id);
  EXPECT_EQ(loaded.question, trace.question);
  EXPECT_EQ(loaded.arm, trace.arm);
  EXPECT_EQ(loaded.model, trace.model);
  EXPECT_EQ(loaded.reranker, trace.reranker);
  EXPECT_EQ(loaded.first_pass_k, trace.first_pass_k);
  EXPECT_EQ(loaded.final_l, trace.final_l);
  EXPECT_EQ(loaded.generation, trace.generation);
  EXPECT_EQ(loaded.degradation, trace.degradation);
  EXPECT_EQ(loaded.embed_seconds, trace.embed_seconds);
  EXPECT_EQ(loaded.search_seconds, trace.search_seconds);
  EXPECT_EQ(loaded.rerank_seconds, trace.rerank_seconds);
  EXPECT_EQ(loaded.embed.embedder, trace.embed.embedder);
  EXPECT_EQ(loaded.embed.query_vec, trace.embed.query_vec);
  ASSERT_EQ(loaded.retrieve.candidates.size(),
            trace.retrieve.candidates.size());
  for (std::size_t i = 0; i < loaded.retrieve.candidates.size(); ++i) {
    EXPECT_EQ(loaded.retrieve.candidates[i].id,
              trace.retrieve.candidates[i].id);
    EXPECT_EQ(loaded.retrieve.candidates[i].score,
              trace.retrieve.candidates[i].score);
    EXPECT_EQ(loaded.retrieve.candidates[i].via,
              trace.retrieve.candidates[i].via);
    EXPECT_EQ(loaded.retrieve.candidates[i].first_pass_rank,
              trace.retrieve.candidates[i].first_pass_rank);
  }
  EXPECT_EQ(loaded.rerank.rerank_degraded, trace.rerank.rerank_degraded);
  ASSERT_EQ(loaded.rerank.contexts.size(), trace.rerank.contexts.size());
  EXPECT_EQ(loaded.prompt.system, trace.prompt.system);
  ASSERT_EQ(loaded.prompt.contexts.size(), trace.prompt.contexts.size());
  for (std::size_t i = 0; i < loaded.prompt.contexts.size(); ++i) {
    EXPECT_EQ(loaded.prompt.contexts[i].id, trace.prompt.contexts[i].id);
    EXPECT_EQ(loaded.prompt.contexts[i].title,
              trace.prompt.contexts[i].title);
    EXPECT_EQ(loaded.prompt.contexts[i].text, trace.prompt.contexts[i].text);
    EXPECT_EQ(loaded.prompt.contexts[i].score,
              trace.prompt.contexts[i].score);
  }
  EXPECT_EQ(loaded.prompt.max_attended, trace.prompt.max_attended);
  EXPECT_EQ(loaded.prompt.prompt, trace.prompt.prompt);
  EXPECT_EQ(loaded.generate.response.text, trace.generate.response.text);
  EXPECT_EQ(loaded.generate.response.mode, trace.generate.response.mode);
  EXPECT_EQ(loaded.generate.response.latency_seconds,
            trace.generate.response.latency_seconds);
  EXPECT_EQ(loaded.generate.response.prompt_tokens,
            trace.generate.response.prompt_tokens);
  EXPECT_EQ(loaded.generate.response.completion_tokens,
            trace.generate.response.completion_tokens);
  EXPECT_EQ(loaded.generate.response.used_context_ids,
            trace.generate.response.used_context_ids);
  EXPECT_EQ(loaded.post.plain_text, trace.post.plain_text);
  EXPECT_EQ(loaded.post.all_code_ok, trace.post.all_code_ok);
  EXPECT_EQ(loaded.post.code_blocks, trace.post.code_blocks);
  EXPECT_EQ(loaded.post.sources, trace.post.sources);

  fs::remove_all(dir);
}

TEST_F(ReplayTest, TruncatedTraceThrows) {
  const std::string dir = fresh_dir("pkb_replay_truncated");
  replay::RecorderOptions opts;
  opts.dir = dir;
  TraceRecorder recorder(opts);
  const std::uint64_t id = recorder.record(record_one(kQuestion));
  const std::string path = TraceRecorder::trace_path(dir, id);

  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size / 2);
  EXPECT_THROW((void)TraceRecorder::load(path), std::runtime_error);

  // Garbage magic is rejected up front.
  { std::ofstream(path, std::ios::binary | std::ios::trunc) << "not a trace"; }
  EXPECT_THROW((void)TraceRecorder::load(path), std::runtime_error);
  fs::remove_all(dir);
}

TEST_F(ReplayTest, RecorderSamplingAndIdResume) {
  const std::string dir = fresh_dir("pkb_replay_sampling");
  replay::RecorderOptions opts;
  opts.dir = dir;
  opts.sample_every = 3;
  TraceRecorder recorder(opts);
  // Every third request is sampled, starting with the first.
  EXPECT_TRUE(recorder.sample());
  EXPECT_FALSE(recorder.sample());
  EXPECT_FALSE(recorder.sample());
  EXPECT_TRUE(recorder.sample());

  const rag::StageTrace trace = record_one(kQuestion);
  EXPECT_EQ(recorder.record(trace), 1u);
  EXPECT_EQ(recorder.record(trace), 2u);

  // A new recorder over the same directory resumes past existing ids.
  TraceRecorder resumed(opts);
  EXPECT_EQ(resumed.record(trace), 3u);
  EXPECT_EQ(TraceRecorder::list(dir),
            (std::vector<std::uint64_t>{1, 2, 3}));
  fs::remove_all(dir);
}

TEST_F(ReplayTest, ServerRecordsSampledRequests) {
  const std::string dir = fresh_dir("pkb_replay_serve");
  replay::RecorderOptions rec_opts;
  rec_opts.dir = dir;
  TraceRecorder recorder(rec_opts);

  auto workflow = make_workflow();
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.recorder = &recorder;
  {
    serve::Server server(*workflow, opts);
    const rag::WorkflowOutcome out = server.ask(kQuestion);
    (void)server.ask("How do I monitor the true residual norm?");
    // A cache hit runs no pipeline and records nothing.
    (void)server.ask(kQuestion);
    EXPECT_FALSE(out.response.text.empty());
  }
  EXPECT_EQ(recorder.recorded(), 2u);
  const std::vector<std::uint64_t> ids = TraceRecorder::list(dir);
  ASSERT_EQ(ids.size(), 2u);
  // The recorded traces replay to the very answers the server returned.
  for (const std::uint64_t id : ids) {
    const rag::StageTrace t =
        TraceRecorder::load(TraceRecorder::trace_path(dir, id));
    EXPECT_FALSE(t.generate.response.text.empty());
    EXPECT_EQ(t.arm, "rag+rerank");
  }
  fs::remove_all(dir);
}

// --- time travel ----------------------------------------------------------

// The headline contract: replaying from GenerateStage re-runs ONLY the LLM
// and postprocessing — zero embed/retrieve/rerank work (proven via fault
// plan call ordinals and the retrieve-requests counter) — and, the model
// being deterministic, reproduces the recorded answer bit for bit.
TEST_F(ReplayTest, FromGenerateIsBitIdenticalAndRunsNoRetrieval) {
  const rag::StageTrace recorded = record_one(kQuestion);

  ReplayEngine engine(*kb_);
  // A plan that would fail ANY vector search or rerank instantly: if replay
  // touched retrieval, the counters would move (and the stages would
  // throw). calls == 0 afterwards proves the stages never ran.
  res::FaultPlanOptions plan_opts;
  plan_opts.vector_search.transient_rate = 1.0;
  plan_opts.rerank.transient_rate = 1.0;
  res::FaultPlan plan(plan_opts);
  engine.set_fault_plan(&plan);

  const std::uint64_t retrieves_before =
      obs::global_metrics().counter(obs::kRetrieveRequestsTotal).value();
  ReplayOverrides ov;
  ov.from = StageKind::Generate;
  const ReplayResult result = engine.replay(recorded, ov);

  EXPECT_EQ(plan.counts(res::Stage::VectorSearch).calls, 0u);
  EXPECT_EQ(plan.counts(res::Stage::Rerank).calls, 0u);
  EXPECT_EQ(
      obs::global_metrics().counter(obs::kRetrieveRequestsTotal).value(),
      retrieves_before);

  EXPECT_EQ(result.from, StageKind::Generate);
  EXPECT_EQ(result.outcome.response.text, recorded.generate.response.text);
  EXPECT_EQ(result.outcome.response.mode, recorded.generate.response.mode);
  EXPECT_EQ(result.outcome.response.used_context_ids,
            recorded.generate.response.used_context_ids);
  EXPECT_EQ(result.outcome.prompt, recorded.prompt.prompt);
  EXPECT_EQ(result.outcome.generation, recorded.generation);
  EXPECT_EQ(result.outcome.processed.plain_text, recorded.post.plain_text);
  EXPECT_FALSE(result.diff.any()) << result.diff.summary();
}

// Replaying the whole pipeline (from Embed) against the same KB reproduces
// the recording end to end.
TEST_F(ReplayTest, FromEmbedReproducesRecordingOnSameKb) {
  const rag::StageTrace recorded = record_one(kQuestion);
  ReplayEngine engine(*kb_);
  ReplayOverrides ov;
  ov.from = StageKind::Embed;
  const ReplayResult result = engine.replay(recorded, ov);
  EXPECT_FALSE(result.diff.any()) << result.diff.summary();
  EXPECT_EQ(result.outcome.response.text, recorded.generate.response.text);
  EXPECT_EQ(result.trace.retrieve.candidates.size(),
            recorded.retrieve.candidates.size());
}

// A first-pass-K override (k=8 vs recorded k=4) invalidates the retrieval:
// the effective cut moves to RetrieveStage (the recorded embedding is
// reused) and the diff reports what changed downstream.
TEST_F(ReplayTest, KOverrideMovesCutAndDiffsContexts) {
  rag::RetrieverOptions narrow;
  narrow.first_pass_k = 4;
  const rag::StageTrace recorded = record_one(kQuestion, narrow);
  ASSERT_EQ(recorded.first_pass_k, 4u);
  ASSERT_EQ(recorded.retrieve.candidates.size(), 4u);

  ReplayEngine engine(*kb_);
  ReplayOverrides ov;
  ov.from = StageKind::Generate;  // the override forces an earlier cut
  ov.first_pass_k = 8;
  const ReplayResult result = engine.replay(recorded, ov);

  EXPECT_EQ(result.from, StageKind::Retrieve);
  EXPECT_EQ(result.trace.first_pass_k, 8u);
  EXPECT_GT(result.trace.retrieve.candidates.size(),
            recorded.retrieve.candidates.size());
  // The widened first pass changed what the reranker saw; the diff report
  // carries the context-level delta and both answers for comparison.
  EXPECT_EQ(result.diff.recorded_answer, recorded.generate.response.text);
  EXPECT_EQ(result.diff.replayed_answer, result.outcome.response.text);
  EXPECT_FALSE(result.diff.summary().empty());
  if (result.diff.any()) {
    EXPECT_TRUE(!result.diff.contexts_added.empty() ||
                !result.diff.contexts_removed.empty() ||
                result.diff.context_order_changed ||
                result.diff.prompt_changed || result.diff.answer_changed);
  }
}

// A reranker override replays from RerankStage: embed and vector search
// are seeded from the recording (proven by plan ordinals again).
TEST_F(ReplayTest, RerankerOverrideReplaysFromRerankOnly) {
  const rag::StageTrace recorded = record_one(kQuestion);

  ReplayEngine engine(*kb_);
  res::FaultPlanOptions plan_opts;
  plan_opts.vector_search.transient_rate = 1.0;
  res::FaultPlan plan(plan_opts);
  engine.set_fault_plan(&plan);

  ReplayOverrides ov;
  ov.reranker = std::string();  // disable reranking
  const ReplayResult result = engine.replay(recorded, ov);

  EXPECT_EQ(result.from, StageKind::Rerank);
  EXPECT_EQ(plan.counts(res::Stage::VectorSearch).calls, 0u);
  // Without the reranker the contexts are the first-pass order, truncated
  // to L — recorded candidates, not a fresh search.
  ASSERT_FALSE(result.trace.rerank.contexts.empty());
  for (std::size_t i = 0; i < result.trace.rerank.contexts.size(); ++i) {
    EXPECT_EQ(result.trace.rerank.contexts[i].id,
              recorded.retrieve.candidates[i].id);
  }
}

// From Postprocess everything upstream is seeded: the replay merely re-runs
// box 4 over the recorded response.
TEST_F(ReplayTest, FromPostprocessSeedsEverything) {
  const rag::StageTrace recorded = record_one(kQuestion);
  ReplayEngine engine(*kb_);
  ReplayOverrides ov;
  ov.from = StageKind::Postprocess;
  const ReplayResult result = engine.replay(recorded, ov);
  EXPECT_EQ(result.from, StageKind::Postprocess);
  EXPECT_EQ(result.outcome.response.text, recorded.generate.response.text);
  EXPECT_EQ(result.outcome.processed.plain_text, recorded.post.plain_text);
  EXPECT_FALSE(result.diff.any()) << result.diff.summary();
}

// A max_attended override moves the cut to PromptStage and narrows the
// attention window; a model override re-generates with another model.
TEST_F(ReplayTest, PromptAndModelOverrides) {
  const rag::StageTrace recorded = record_one(kQuestion);
  ReplayEngine engine(*kb_);

  ReplayOverrides narrow;
  narrow.max_attended = 1;
  const ReplayResult narrowed = engine.replay(recorded, narrow);
  EXPECT_EQ(narrowed.from, StageKind::Prompt);
  EXPECT_EQ(narrowed.trace.prompt.max_attended, 1u);

  ReplayOverrides other_model;
  other_model.model = "sim-llama3-70b";
  const ReplayResult remodeled = engine.replay(recorded, other_model);
  EXPECT_EQ(remodeled.from, StageKind::Generate);
  EXPECT_EQ(remodeled.trace.model, "sim-llama3-70b");
  // Same prompt, different model: the diff explains the answer delta.
  EXPECT_EQ(remodeled.outcome.prompt, recorded.prompt.prompt);
}

// Replay metrics move: replays_total, stages run/skipped.
TEST_F(ReplayTest, ReplayMetricsAccounting) {
  const rag::StageTrace recorded = record_one(kQuestion);
  ReplayEngine engine(*kb_);
  obs::MetricsRegistry& metrics = obs::global_metrics();
  const std::uint64_t replays_before =
      metrics.counter(obs::kReplayReplaysTotal).value();
  const std::uint64_t generate_runs_before =
      metrics.counter(obs::kReplayStagesRunTotal, {{"stage", "generate"}})
          .value();
  const std::uint64_t embed_skips_before =
      metrics
          .counter(obs::kReplayStagesSkippedTotal, {{"stage", "embed"}})
          .value();

  ReplayOverrides ov;
  ov.from = StageKind::Generate;
  (void)engine.replay(recorded, ov);

  EXPECT_EQ(metrics.counter(obs::kReplayReplaysTotal).value(),
            replays_before + 1);
  EXPECT_EQ(
      metrics.counter(obs::kReplayStagesRunTotal, {{"stage", "generate"}})
          .value(),
      generate_runs_before + 1);
  EXPECT_EQ(
      metrics.counter(obs::kReplayStagesSkippedTotal, {{"stage", "embed"}})
          .value(),
      embed_skips_before + 1);
}

TEST_F(ReplayTest, UnknownArmInTraceHeaderThrows) {
  rag::StageTrace bogus = record_one(kQuestion);
  bogus.arm = "not-an-arm";
  ReplayEngine engine(*kb_);
  EXPECT_THROW((void)engine.replay(bogus), std::runtime_error);
}

}  // namespace
