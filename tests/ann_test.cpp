// ANN hot-path tests: kernel backend consistency, the int8 + exact-re-rank
// bit-identity property, HNSW recall and determinism, the deterministic
// parallel k-means trainer, PQ/ADC search and codebook builds, IndexSpec
// routing through Snapshot/Retriever/ShardRouter, and snapshot persistence
// v3/v4. Suite names (Kernels*, Quantize*, Hnsw*, Kmeans*, Pq*, AnnIndex*,
// AnnKnowledgeBase*) are part of the scripts/run_tsan.sh filter.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "rag/knowledge_base.h"
#include "rag/retriever.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "vectordb/hnsw.h"
#include "vectordb/index.h"
#include "vectordb/ivf.h"
#include "vectordb/kmeans.h"
#include "vectordb/pq.h"
#include "vectordb/quantize.h"
#include "vectordb/shard_router.h"
#include "vectordb/vector_store.h"

namespace {

using namespace pkb;
using embed::Vector;
using vectordb::HnswIndex;
using vectordb::HnswOptions;
using vectordb::IndexKind;
using vectordb::IndexSpec;
using vectordb::Int8Codes;
using vectordb::KmeansMetric;
using vectordb::KmeansOptions;
using vectordb::KmeansResult;
using vectordb::PqCodebook;
using vectordb::PqCodes;
using vectordb::PqOptions;
using vectordb::Quantizer;
using vectordb::SearchResult;
using vectordb::ShardRouter;
using vectordb::ShardRouterOptions;
using vectordb::VectorStore;

VectorStore random_store(std::size_t n, std::size_t dim, std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  VectorStore store;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    text::Document doc;
    doc.id = "doc-" + std::to_string(i);
    store.add(std::move(doc), std::move(v));
  }
  return store;
}

std::vector<Vector> random_queries(std::size_t n, std::size_t dim,
                                   std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  std::vector<Vector> queries;
  queries.reserve(n);
  for (std::size_t q = 0; q < n; ++q) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    queries.push_back(std::move(v));
  }
  return queries;
}

void expect_hits_equal(const std::vector<SearchResult>& a,
                       const std::vector<SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;  // bit-identical
  }
}

// --- util/arena.h ----------------------------------------------------------

TEST(KernelsArena, AlignedBufferIsAlignedAndZeroFilled) {
  util::AlignedBuffer buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                util::kArenaAlignment,
            0u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(std::to_integer<int>(buf.data()[i]), 0);
  }
  buf.as<float>()[0] = 1.5f;
  buf.resize(100000);  // grow preserves contents, zeroes the rest
  EXPECT_EQ(buf.as<float>()[0], 1.5f);
  EXPECT_EQ(std::to_integer<int>(buf.data()[99999]), 0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                util::kArenaAlignment,
            0u);
}

TEST(KernelsArena, ArenaAllocationsAreAlignedAndStable) {
  util::Arena arena(/*slab_bytes=*/256);
  float* first = arena.alloc_array<float>(10);
  first[0] = 42.0f;
  // Force several new slabs; earlier pointers must stay valid.
  for (int i = 0; i < 50; ++i) {
    auto* p = arena.alloc_array<std::uint32_t>(17);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % util::kArenaAlignment, 0u);
    EXPECT_EQ(p[0], 0u);  // zeroed
  }
  EXPECT_EQ(first[0], 42.0f);
  EXPECT_GT(arena.footprint(), 0u);
}

// --- kernels ---------------------------------------------------------------

TEST(Kernels, BackendNameIsKnown) {
  const std::string_view name = vectordb::kernels::backend_name();
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar") << name;
}

TEST(Kernels, PaddedDotEqualsSelfConsistentAcrossCalls) {
  // The same (query, row) pair must score identically via dot_f32 on the
  // padded row and via PackedF32::score_range — the in-process consistency
  // contract every equivalence gate relies on.
  pkb::util::Rng rng(123);
  for (std::size_t dim : {3u, 8u, 17u, 64u, 100u}) {
    vectordb::kernels::PackedF32 packed(dim);
    std::vector<float> row(dim);
    for (float& x : row) x = static_cast<float>(rng.normal());
    packed.append(row.data());

    std::vector<float> query(dim);
    for (float& x : query) x = static_cast<float>(rng.normal());
    util::AlignedBuffer qbuf(packed.stride() * sizeof(float));
    packed.pack_query(query.data(), qbuf.as<float>());

    const float via_dot = vectordb::kernels::dot_f32(
        qbuf.as<float>(), packed.row(0), packed.stride());
    float via_range = 0.0f;
    packed.score_range(qbuf.as<float>(), 0, 1, &via_range);
    EXPECT_EQ(via_dot, via_range);
  }
}

TEST(Kernels, Int8DotIsExactIntegerMath) {
  std::vector<std::int8_t> a(70), b(70);
  pkb::util::Rng rng(7);
  std::int32_t expect = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int8_t>(rng.range(-127, 127));
    b[i] = static_cast<std::int8_t>(rng.range(-127, 127));
    expect += static_cast<std::int32_t>(a[i]) * b[i];
  }
  EXPECT_EQ(vectordb::kernels::dot_i8(a.data(), b.data(), a.size()), expect);
}

// --- quantize: the bit-identity property -----------------------------------

TEST(Quantize, RerankIsBitIdenticalToFlatAcrossSeedsAndDims) {
  // Property: int8 candidate scan + exact fp32 re-rank returns the exact
  // flat-search top-k — indices AND scores — whenever the survivor set
  // covers the true top-k (rerank_factor 4 is ample on random data).
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (std::size_t dim : {8u, 32u, 64u, 100u}) {
      const VectorStore store = random_store(300, dim, seed);
      const Int8Codes codes = Int8Codes::build(store);
      const auto queries = random_queries(10, dim, seed * 7919 + 17);
      for (const Vector& q : queries) {
        const auto flat = store.similarity_search(q, 10);
        const auto reranked =
            vectordb::quantized_search(store, codes, q, 10, 4);
        expect_hits_equal(flat, reranked);
      }
    }
  }
}

TEST(Quantize, RerankFactorOneStillReturnsKHits) {
  const VectorStore store = random_store(100, 16, 9);
  const Int8Codes codes = Int8Codes::build(store);
  const auto q = random_queries(1, 16, 10)[0];
  const auto hits = vectordb::quantized_search(store, codes, q, 5, 1);
  EXPECT_EQ(hits.size(), 5u);
}

TEST(Quantize, StaleCodesThrow) {
  VectorStore store = random_store(10, 8, 11);
  const Int8Codes codes = Int8Codes::build(store);
  text::Document doc;
  doc.id = "late";
  store.add(std::move(doc), random_queries(1, 8, 12)[0]);
  EXPECT_THROW(vectordb::quantized_search(store, codes,
                                          random_queries(1, 8, 13)[0], 3, 2),
               std::invalid_argument);
}

// --- HNSW ------------------------------------------------------------------

TEST(Hnsw, RecallFloorOnTenThousandVectors) {
  const std::size_t n = 10000;
  const std::size_t dim = 32;
  const VectorStore store = random_store(n, dim, 21);
  const HnswIndex index(store, HnswOptions{});
  const auto queries = random_queries(50, dim, 22);
  const double recall = index.recall_at_k(queries, 10);
  EXPECT_GE(recall, 0.95) << "recall@10 on " << n << " vectors";
}

TEST(Hnsw, BuildIsDeterministic) {
  const VectorStore store = random_store(500, 16, 31);
  const HnswIndex a(store, HnswOptions{});
  const HnswIndex b(store, HnswOptions{});
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.max_level(), b.max_level());
  for (const Vector& q : random_queries(10, 16, 32)) {
    expect_hits_equal(a.search(q, 5), b.search(q, 5));
  }
}

TEST(Hnsw, ScoresAreFlatScanExact) {
  // HNSW hit scores must be bit-identical to the flat scan's score for the
  // same entry (membership may differ; scores may not).
  const VectorStore store = random_store(2000, 24, 41);
  const HnswIndex index(store, HnswOptions{});
  for (const Vector& q : random_queries(10, 24, 42)) {
    const auto exact = store.similarity_search(q, 50);
    const auto approx = index.search(q, 10);
    for (const SearchResult& hit : approx) {
      for (const SearchResult& e : exact) {
        if (e.index == hit.index) EXPECT_EQ(e.score, hit.score);
      }
    }
  }
}

TEST(Hnsw, Int8TraversalKeepsExactScores) {
  const VectorStore store = random_store(2000, 24, 51);
  const Int8Codes codes = Int8Codes::build(store);
  const HnswIndex index(store, HnswOptions{}, &codes);
  const auto queries = random_queries(30, 24, 52);
  EXPECT_GE(index.recall_at_k(queries, 10), 0.9);
  for (const Vector& q : queries) {
    const auto exact = store.similarity_search(q, 50);
    for (const SearchResult& hit : index.search(q, 10)) {
      for (const SearchResult& e : exact) {
        if (e.index == hit.index) EXPECT_EQ(e.score, hit.score);
      }
    }
  }
}

TEST(Hnsw, EmptyStoreThrows) {
  const VectorStore store;
  EXPECT_THROW(HnswIndex{store}, std::invalid_argument);
}

// --- deterministic parallel k-means ----------------------------------------

vectordb::kernels::PackedF32 random_packed(std::size_t n, std::size_t dim,
                                           std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  vectordb::kernels::PackedF32 data(dim);
  std::vector<float> row(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (float& x : row) x = static_cast<float>(rng.normal());
    data.append(row.data());
  }
  return data;
}

void expect_kmeans_equal(const KmeansResult& a, const KmeansResult& b) {
  ASSERT_EQ(a.centroids.rows(), b.centroids.rows());
  const std::size_t bytes = a.centroids.dim() * sizeof(float);
  for (std::size_t c = 0; c < a.centroids.rows(); ++c) {
    EXPECT_EQ(std::memcmp(a.centroids.row(c), b.centroids.row(c), bytes), 0)
        << "centroid " << c;
  }
  EXPECT_EQ(a.assign, b.assign);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(Kmeans, BuildIsByteIdenticalAcrossWorkerCounts) {
  // n is large enough for several chunks (kMinChunk = 1024), so 2- and
  // 8-worker pools genuinely interleave chunk execution; the merged result
  // must not care.
  const auto data = random_packed(2600, 8, 7);
  for (KmeansMetric metric : {KmeansMetric::Cosine, KmeansMetric::L2}) {
    KmeansOptions opts;
    opts.k = 24;
    opts.iters = 4;
    opts.seed = 99;
    opts.metric = metric;
    util::ThreadPool one(1);
    opts.pool = &one;
    const KmeansResult a = vectordb::kmeans_cluster(data, opts);
    util::ThreadPool two(2);
    opts.pool = &two;
    const KmeansResult b = vectordb::kmeans_cluster(data, opts);
    util::ThreadPool eight(8);
    opts.pool = &eight;
    const KmeansResult c = vectordb::kmeans_cluster(data, opts);
    expect_kmeans_equal(a, b);
    expect_kmeans_equal(a, c);
  }
}

TEST(Kmeans, DegenerateReseedPicksFreshRows) {
  // 8 distinct values, each duplicated 40×, k = 8: k-means++ rounds hit the
  // zero-weight walk and re-seeds must land on rows distinct from every
  // chosen centroid, so all 8 clusters end up populated with 8 distinct
  // centroids — the cluster-wasting regression the old in-line IVF k-means
  // had.
  pkb::util::Rng rng(13);
  std::vector<std::vector<float>> base(8, std::vector<float>(6));
  for (auto& row : base) {
    for (float& x : row) x = static_cast<float>(rng.normal());
  }
  vectordb::kernels::PackedF32 data(6);
  for (std::size_t i = 0; i < 8 * 40; ++i) data.append(base[i % 8].data());

  KmeansOptions opts;
  opts.k = 8;
  opts.iters = 3;
  opts.metric = KmeansMetric::L2;
  const KmeansResult res = vectordb::kmeans_cluster(data, opts);
  ASSERT_EQ(res.counts.size(), 8u);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_GT(res.counts[c], 0u) << "cluster " << c << " wasted";
    for (std::size_t o = c + 1; o < 8; ++o) {
      EXPECT_NE(std::memcmp(res.centroids.row(c), res.centroids.row(o),
                            6 * sizeof(float)),
                0)
          << "duplicate centroids " << c << "/" << o;
    }
  }
}

TEST(Kmeans, FindFreshRowSkipsCentroidDuplicates) {
  vectordb::kernels::PackedF32 data(2);
  const float rows[4][2] = {{1, 0}, {1, 0}, {0, 1}, {1, 0}};
  for (const auto& r : rows) data.append(r);
  vectordb::kernels::PackedF32 centroids(2);
  centroids.append(rows[0]);  // {1, 0} is taken
  // Every start lands on the only fresh row, index 2.
  for (std::uint64_t start = 0; start < 8; ++start) {
    EXPECT_EQ(vectordb::find_fresh_row(data, centroids, start), 2u);
  }
  centroids.append(rows[2]);  // now everything duplicates a centroid
  EXPECT_EQ(vectordb::find_fresh_row(data, centroids, 3), 3u);  // start row
}

// --- product quantization --------------------------------------------------

TEST(Pq, RerankIsBitIdenticalToFlatWhenSurvivorsCoverAll) {
  // With k × rerank_factor ≥ n every row survives the ADC scan, so the
  // exact re-rank must reproduce the flat scan bit-for-bit — indices and
  // scores — for any seed and sub-quantizer split.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const VectorStore store = random_store(200, 16, seed);
    PqOptions po;
    po.m = 4;
    po.seed = seed;
    const PqCodebook book = PqCodebook::train(store, po);
    const PqCodes codes = PqCodes::encode(store, book);
    for (const Vector& q : random_queries(8, 16, seed * 31 + 5)) {
      expect_hits_equal(store.similarity_search(q, 10),
                        vectordb::pq_search(store, book, codes, q, 10, 20));
    }
  }
}

TEST(Pq, CodesAreByteIdenticalAcrossWorkerCounts) {
  const VectorStore store = random_store(2600, 16, 17);
  PqOptions po;
  po.m = 4;
  po.kmeans_iters = 3;
  util::ThreadPool one(1);
  util::ThreadPool eight(8);
  const PqCodebook book1 = PqCodebook::train(store, po, &one);
  const PqCodebook book8 = PqCodebook::train(store, po, &eight);
  ASSERT_EQ(book1.m(), book8.m());
  ASSERT_EQ(book1.centers(), book8.centers());

  // Codebooks compare through their observable outputs: every code byte and
  // every LUT float must match.
  const PqCodes codes1 = PqCodes::encode(store, book1, &one);
  const PqCodes codes8 = PqCodes::encode(store, book8, &eight);
  ASSERT_EQ(codes1.rows(), codes8.rows());
  for (std::size_t i = 0; i < codes1.rows(); ++i) {
    EXPECT_EQ(std::memcmp(codes1.row(i), codes8.row(i), codes1.m()), 0)
        << "row " << i;
  }
  std::vector<float> lut1(book1.lut_size());
  std::vector<float> lut8(book8.lut_size());
  for (const Vector& q : random_queries(4, 16, 18)) {
    Vector nq = q;
    embed::l2_normalize(nq);
    book1.build_lut(nq.data(), lut1.data());
    book8.build_lut(nq.data(), lut8.data());
    EXPECT_EQ(std::memcmp(lut1.data(), lut8.data(),
                          lut1.size() * sizeof(float)),
              0);
  }
}

TEST(Pq, ReferenceTrainerMatchesShape) {
  const VectorStore store = random_store(300, 12, 23);
  PqOptions po;
  po.m = 3;
  po.kmeans_iters = 2;
  const PqCodebook book = PqCodebook::train(store, po);
  const PqCodebook ref = PqCodebook::train_reference(store, po);
  EXPECT_EQ(book.m(), ref.m());
  EXPECT_EQ(book.dim(), ref.dim());
  EXPECT_EQ(book.centers(), ref.centers());
}

TEST(Pq, StaleCodesOrBookThrow) {
  VectorStore store = random_store(50, 8, 29);
  const PqCodebook book = PqCodebook::train(store, PqOptions{});
  const PqCodes codes = PqCodes::encode(store, book);
  const Vector q = random_queries(1, 8, 30)[0];
  text::Document doc;
  doc.id = "late";
  store.add(std::move(doc), random_queries(1, 8, 31)[0]);
  EXPECT_THROW(vectordb::pq_search(store, book, codes, q, 3, 2),
               std::invalid_argument);
}

TEST(Pq, HnswPqTraversalKeepsExactScores) {
  const VectorStore store = random_store(2000, 24, 57);
  PqOptions po;
  const PqCodebook book = PqCodebook::train(store, po);
  const PqCodes codes = PqCodes::encode(store, book);
  const HnswIndex index(store, HnswOptions{}, nullptr, &book, &codes);
  const auto queries = random_queries(30, 24, 58);
  EXPECT_GE(index.recall_at_k(queries, 10), 0.85);
  for (const Vector& q : queries) {
    const auto exact = store.similarity_search(q, 50);
    for (const SearchResult& hit : index.search(q, 10)) {
      for (const SearchResult& e : exact) {
        if (e.index == hit.index) {
          EXPECT_EQ(e.score, hit.score);
        }
      }
    }
  }
}

// --- IndexSpec / build_index ----------------------------------------------

TEST(AnnIndex, IdentitySpecBuildsNothing) {
  const VectorStore store = random_store(50, 8, 61);
  EXPECT_EQ(vectordb::build_index(store, IndexSpec{}), nullptr);
  IndexSpec int8;
  int8.quant = Quantizer::Int8;
  EXPECT_NE(vectordb::build_index(store, int8), nullptr);
}

TEST(AnnIndex, SpecNamesAreStable) {
  IndexSpec spec;
  EXPECT_EQ(spec.name(), "flat");
  spec.quant = Quantizer::Int8;
  EXPECT_EQ(spec.name(), "flat_int8");
  spec.kind = IndexKind::Ivf;
  EXPECT_EQ(spec.name(), "ivf_int8");
  spec.kind = IndexKind::Hnsw;
  spec.quant = Quantizer::None;
  EXPECT_EQ(spec.name(), "hnsw");
  spec.quant = Quantizer::Pq;
  EXPECT_EQ(spec.name(), "hnsw_pq");
  spec.kind = IndexKind::Flat;
  EXPECT_EQ(spec.name(), "flat_pq");
}

TEST(AnnIndex, FlatPqMatchesFlatScanWithFullRerank) {
  const VectorStore store = random_store(200, 16, 73);
  IndexSpec spec;
  spec.quant = Quantizer::Pq;
  spec.rerank_factor = 20;  // 10 × 20 ≥ n: survivors cover everything
  const auto index = vectordb::build_index(store, spec);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->name(), "flat_pq");
  EXPECT_LE(index->scan_bytes_per_vector(), 8u);  // m=8 codes at dim 16
  for (const Vector& q : random_queries(10, 16, 74)) {
    expect_hits_equal(store.similarity_search(q, 10), index->search(q, 10));
  }
}

TEST(AnnIndex, IvfPqComposesProbeAndRerank) {
  const VectorStore store = random_store(400, 16, 83);
  IndexSpec spec;
  spec.kind = IndexKind::Ivf;
  spec.quant = Quantizer::Pq;
  spec.ivf.nprobe = 64;     // probe everything
  spec.rerank_factor = 40;  // 10 × 40 ≥ n: result must equal flat scan
  const auto index = vectordb::build_index(store, spec);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->name(), "ivf_pq");
  for (const Vector& q : random_queries(5, 16, 84)) {
    expect_hits_equal(store.similarity_search(q, 10), index->search(q, 10));
  }
}

TEST(AnnIndex, FlatInt8MatchesFlatScan) {
  const VectorStore store = random_store(200, 16, 71);
  IndexSpec spec;
  spec.quant = Quantizer::Int8;
  spec.rerank_factor = 4;
  const auto index = vectordb::build_index(store, spec);
  ASSERT_NE(index, nullptr);
  for (const Vector& q : random_queries(10, 16, 72)) {
    expect_hits_equal(store.similarity_search(q, 10), index->search(q, 10));
  }
}

TEST(AnnIndex, IvfInt8ComposesProbeAndRerank) {
  const VectorStore store = random_store(400, 16, 81);
  IndexSpec spec;
  spec.kind = IndexKind::Ivf;
  spec.quant = Quantizer::Int8;
  spec.ivf.nprobe = 64;  // probe everything: result must equal flat scan
  const auto index = vectordb::build_index(store, spec);
  ASSERT_NE(index, nullptr);
  for (const Vector& q : random_queries(5, 16, 82)) {
    expect_hits_equal(store.similarity_search(q, 10), index->search(q, 10));
  }
}

TEST(AnnIndex, BatchMatchesSingle) {
  const VectorStore store = random_store(300, 16, 91);
  IndexSpec spec;
  spec.kind = IndexKind::Hnsw;
  const auto index = vectordb::build_index(store, spec);
  ASSERT_NE(index, nullptr);
  const auto queries = random_queries(8, 16, 92);
  const auto batch = index->search_batch(queries, 7);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_hits_equal(index->search(queries[i], 7), batch[i]);
  }
}

// --- per-shard indexes -----------------------------------------------------

TEST(AnnIndex, ShardedFlatInt8MergesBitIdentical) {
  // Per-shard flat_int8 indexes re-rank exactly, so the scatter-merge must
  // reproduce the monolithic flat scan bit-for-bit.
  const VectorStore store = random_store(240, 16, 101);
  ShardRouterOptions opts;
  opts.index.quant = Quantizer::Int8;
  opts.index.rerank_factor = 4;
  const auto router = ShardRouter::partition(store, 4, opts);
  for (const Vector& q : random_queries(10, 16, 102)) {
    const auto mono = store.similarity_search(q, 10);
    const auto sc = router->search(q, 10);
    EXPECT_FALSE(sc.partial());
    expect_hits_equal(mono, sc.hits);
  }
}

TEST(AnnIndex, ShardedHnswReturnsExactScores) {
  const VectorStore store = random_store(1200, 16, 111);
  ShardRouterOptions opts;
  opts.index.kind = IndexKind::Hnsw;
  const auto router = ShardRouter::partition(store, 3, opts);
  for (const Vector& q : random_queries(5, 16, 112)) {
    const auto exact = store.similarity_search(q, 60);
    const auto sc = router->search(q, 10);
    EXPECT_EQ(sc.hits.size(), 10u);
    for (const SearchResult& hit : sc.hits) {
      for (const SearchResult& e : exact) {
        if (e.index == hit.index) EXPECT_EQ(e.score, hit.score);
      }
    }
  }
}

// --- generational wiring ---------------------------------------------------

text::VirtualDir tiny_corpus() {
  text::VirtualDir corpus;
  for (int i = 0; i < 12; ++i) {
    corpus.push_back(
        {"doc" + std::to_string(i) + ".md",
         "# VecSetValues topic " + std::to_string(i) +
             "\n\nPETSc manual page about VecSetValues and "
             "MatAssemblyBegin, section " +
             std::to_string(i) +
             ". Use KSPSolve with a preconditioner. More prose so the "
             "splitter has something to chunk across paragraphs.\n"});
  }
  return corpus;
}

TEST(AnnKnowledgeBase, SnapshotBuildsConfiguredIndex) {
  rag::KnowledgeBaseOptions opts;
  opts.index.kind = IndexKind::Hnsw;
  const rag::KnowledgeBase kb = rag::KnowledgeBase::build(tiny_corpus(), opts);
  const rag::SnapshotPtr snap = kb.snapshot();
  ASSERT_NE(snap->ann, nullptr);
  EXPECT_EQ(snap->ann->name(), "hnsw");
  EXPECT_EQ(snap->shards, nullptr);

  // Retrieval routes through the index and still returns results.
  const rag::Retriever retriever(kb);
  const auto result = retriever.retrieve("How do I use VecSetValues?");
  EXPECT_FALSE(result.contexts.empty());
}

TEST(AnnKnowledgeBase, ShardedSnapshotKeepsAnnNull) {
  rag::KnowledgeBaseOptions opts;
  opts.shards = 2;
  opts.index.quant = Quantizer::Int8;
  const rag::KnowledgeBase kb = rag::KnowledgeBase::build(tiny_corpus(), opts);
  const rag::SnapshotPtr snap = kb.snapshot();
  EXPECT_EQ(snap->ann, nullptr);  // per-shard indexes live in the router
  ASSERT_NE(snap->shards, nullptr);
  EXPECT_EQ(snap->shards->shard_count(), 2u);
}

TEST(AnnKnowledgeBase, PersistenceV3RoundTripsIndexSpec) {
  rag::KnowledgeBaseOptions opts;
  opts.index.kind = IndexKind::Hnsw;
  opts.index.quant = Quantizer::Int8;
  opts.index.rerank_factor = 6;
  opts.index.hnsw.ef_search = 48;
  opts.index.ivf.nprobe = 7;
  const rag::KnowledgeBase kb = rag::KnowledgeBase::build(tiny_corpus(), opts);

  const std::string path =
      (std::filesystem::temp_directory_path() / "pkb_ann_snapshot_v3.bin")
          .string();
  kb.snapshot()->save(path);
  const rag::SnapshotPtr loaded = rag::Snapshot::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded->opts.index, kb.snapshot()->opts.index);
  ASSERT_NE(loaded->ann, nullptr);
  EXPECT_EQ(loaded->ann->name(), "hnsw_int8");
}

TEST(AnnKnowledgeBase, PersistenceV4RoundTripsPqSpec) {
  // The v4 snapshot carries the quantizer enum and PqOptions; a PQ-indexed
  // KB must reload with the same spec and rebuild the same index kind.
  rag::KnowledgeBaseOptions opts;
  opts.index.kind = IndexKind::Ivf;
  opts.index.quant = Quantizer::Pq;
  opts.index.pq.m = 2;
  opts.index.pq.kmeans_iters = 3;
  opts.index.pq.seed = 77;
  opts.index.rerank_factor = 8;
  const rag::KnowledgeBase kb = rag::KnowledgeBase::build(tiny_corpus(), opts);

  const std::string path =
      (std::filesystem::temp_directory_path() / "pkb_ann_snapshot_v4.bin")
          .string();
  kb.snapshot()->save(path);
  const rag::SnapshotPtr loaded = rag::Snapshot::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded->opts.index, kb.snapshot()->opts.index);
  EXPECT_EQ(loaded->opts.index.pq.seed, 77u);
  ASSERT_NE(loaded->ann, nullptr);
  EXPECT_EQ(loaded->ann->name(), "ivf_pq");

  // The reloaded index still serves retrieval.
  const rag::Retriever retriever(kb);
  EXPECT_FALSE(retriever.retrieve("VecSetValues usage").contexts.empty());
}

}  // namespace
