#!/usr/bin/env bash
# Negative fixtures for scripts/check_docs.sh: prove both directions of the
# contract actually FAIL when violated, and that a consistent pair passes.
# Wired into ctest as `check_docs_negative`; run standalone from anywhere:
#
#   tests/check_docs_negative.sh
#
# Exercises, via the script's [names_header] [doc] overrides:
#   1. forward  — a header name missing from the doc must exit nonzero;
#   2. reverse  — a backticked `pkb_*` doc name missing from the header
#                 must exit nonzero;
#   3. control  — a consistent header/doc pair must exit zero.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
check="$repo_root/scripts/check_docs.sh"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/names.h" <<'EOF'
inline constexpr std::string_view kDocumented = "pkb_documented_total";
inline constexpr std::string_view kUndocumented = "pkb_undocumented_total";
EOF
cat > "$tmp/doc.md" <<'EOF'
| `pkb_documented_total` | — | documented metric |
EOF

echo "== check_docs_negative: forward (undocumented header name) =="
if bash "$check" "$tmp/names.h" "$tmp/doc.md"; then
  echo "check_docs_negative: FAIL — undocumented header name passed" >&2
  exit 1
fi

cat > "$tmp/names.h" <<'EOF'
inline constexpr std::string_view kDocumented = "pkb_documented_total";
EOF
cat > "$tmp/doc.md" <<'EOF'
| `pkb_documented_total` | — | documented metric |
| `pkb_ghost_total` | — | renamed long ago, doc never updated |
EOF

echo "== check_docs_negative: reverse (stale doc name) =="
if bash "$check" "$tmp/names.h" "$tmp/doc.md"; then
  echo "check_docs_negative: FAIL — stale doc name passed" >&2
  exit 1
fi

cat > "$tmp/doc.md" <<'EOF'
| `pkb_documented_total` | — | documented metric |
Prose mentioning `example_pkb_cli` must stay exempt from the reverse check.
EOF

echo "== check_docs_negative: control (consistent pair) =="
bash "$check" "$tmp/names.h" "$tmp/doc.md"

echo "check_docs_negative: OK"
