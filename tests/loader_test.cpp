#include "text/loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace pkb::text {
namespace {

TEST(GlobMatch, StarDoesNotCrossSlash) {
  EXPECT_TRUE(glob_match("*.md", "file.md"));
  EXPECT_FALSE(glob_match("*.md", "dir/file.md"));
  EXPECT_TRUE(glob_match("dir/*.md", "dir/file.md"));
  EXPECT_FALSE(glob_match("dir/*.md", "dir/sub/file.md"));
}

TEST(GlobMatch, DoubleStarCrossesSlash) {
  EXPECT_TRUE(glob_match("**/*.md", "a/b/c/file.md"));
  EXPECT_TRUE(glob_match("**", "anything/at/all"));
  EXPECT_TRUE(glob_match("manualpages/**", "manualpages/KSP/KSPGMRES.md"));
  EXPECT_FALSE(glob_match("manualpages/**", "docs/KSPGMRES.md"));
}

TEST(GlobMatch, DoubleStarSlashPrefixMatchesTopLevel) {
  // "**/*.md" conventionally also matches a top-level file.
  EXPECT_TRUE(glob_match("**/*.md", "README.md"));
}

TEST(GlobMatch, QuestionMarkSingleNonSlash) {
  EXPECT_TRUE(glob_match("file?.md", "file1.md"));
  EXPECT_FALSE(glob_match("file?.md", "file12.md"));
  EXPECT_FALSE(glob_match("a?b", "a/b"));
}

TEST(GlobMatch, ExactAndEmpty) {
  EXPECT_TRUE(glob_match("abc", "abc"));
  EXPECT_FALSE(glob_match("abc", "abd"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("*", "x"));
}

VirtualDir sample_tree() {
  return VirtualDir{
      {"manualpages/KSP/KSPGMRES.md", "# KSPGMRES\n\nGMRES solver.\n"},
      {"manualpages/KSP/KSPCG.md", "# KSPCG\n\nCG solver.\n"},
      {"docs/manual.md", "# Manual\n\n## Solvers\nUse KSP.\n\n## Vectors\nVec "
                         "objects.\n"},
      {"src/main.c", "int main(){}\n"},
  };
}

TEST(DirectoryLoader, FiltersByPattern) {
  DirectoryLoader loader("**/*.md");
  const auto files = loader.load(sample_tree());
  ASSERT_EQ(files.size(), 3u);
  for (const auto& f : files) {
    EXPECT_TRUE(f.path.ends_with(".md"));
  }
}

TEST(DirectoryLoader, EmptyPatternMatchesEverything) {
  DirectoryLoader loader("");
  EXPECT_EQ(loader.load(sample_tree()).size(), 4u);
}

TEST(DirectoryLoader, SubtreePattern) {
  DirectoryLoader loader("manualpages/**");
  const auto files = loader.load(sample_tree());
  ASSERT_EQ(files.size(), 2u);
}

TEST(MarkdownLoader, SingleModeOneDocPerFile) {
  MarkdownLoader loader(MarkdownMode::Single);
  const auto docs = loader.load_file(sample_tree()[0]);
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].id, "manualpages/KSP/KSPGMRES.md");
  EXPECT_EQ(docs[0].meta("source"), "manualpages/KSP/KSPGMRES.md");
  EXPECT_EQ(docs[0].meta("title"), "KSPGMRES");
  EXPECT_NE(docs[0].text.find("GMRES solver."), std::string::npos);
  EXPECT_EQ(docs[0].text.find('#'), std::string::npos);  // markup stripped
}

TEST(MarkdownLoader, SectionsModeOneDocPerSection) {
  MarkdownLoader loader(MarkdownMode::Sections);
  const auto docs = loader.load_file(sample_tree()[2]);
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[1].meta("section"), "Solvers");
  EXPECT_EQ(docs[2].meta("section"), "Vectors");
  EXPECT_NE(docs[1].text.find("Use KSP."), std::string::npos);
  // All sections share the file title.
  for (const auto& d : docs) EXPECT_EQ(d.meta("title"), "Manual");
}

TEST(MarkdownLoader, LoadManyKeepsOrder) {
  MarkdownLoader loader;
  DirectoryLoader dir("**/*.md");
  const auto docs = loader.load(dir.load(sample_tree()));
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0].id, "manualpages/KSP/KSPGMRES.md");
  EXPECT_EQ(docs[2].id, "docs/manual.md");
}

TEST(DiskRoundTrip, WriteThenLoadFromDisk) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "pkb_loader_test_tree";
  fs::remove_all(root);
  write_tree_to_disk(sample_tree(), root.string());

  DirectoryLoader loader("**/*.md");
  const auto files = loader.load_from_disk(root.string());
  ASSERT_EQ(files.size(), 3u);
  // Sorted by path for determinism.
  EXPECT_EQ(files[0].path, "docs/manual.md");
  EXPECT_EQ(files[1].path, "manualpages/KSP/KSPCG.md");
  EXPECT_NE(files[1].content.find("CG solver."), std::string::npos);
  fs::remove_all(root);
}

TEST(DiskRoundTrip, MissingDirectoryYieldsEmpty) {
  DirectoryLoader loader("**/*.md");
  EXPECT_TRUE(loader.load_from_disk("/nonexistent/pkb/path").empty());
}

}  // namespace
}  // namespace pkb::text
