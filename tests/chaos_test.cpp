// Chaos tests: the Fig-3 pipeline under injected faults. These drive the
// end-to-end resilience contract — deadline budgets, bounded retries, the
// LLM circuit breaker, hedged vector search, the degradation ladder, the
// degraded-answer cache TTL, and ingest-build aborts — with deterministic
// seed-driven fault plans, so every schedule is reproducible. Suite name
// (Chaos*) is part of the scripts/run_tsan.sh filter.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ingest/ingestor.h"
#include "llm/model_config.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "rag/knowledge_base.h"
#include "rag/workflow.h"
#include "resilience/fault_plan.h"
#include "resilience/resilience.h"
#include "serve/server.h"
#include "util/clock.h"

namespace {

using namespace pkb;
namespace res = pkb::resilience;

// A small corpus: fast to build, still several retrievable chunks.
text::VirtualDir chaos_corpus() {
  text::VirtualDir tree;
  for (int i = 0; i < 6; ++i) {
    std::string body = "# Solver guide " + std::to_string(i) + "\n\n";
    for (int p = 0; p < 5; ++p) {
      body += "Paragraph " + std::to_string(p) + " of guide " +
              std::to_string(i) +
              " explains how Krylov subspace solvers, preconditioners, and "
              "convergence monitoring interact, in enough words that the "
              "splitter keeps it as its own chunk. ";
      body += "\n\n";
    }
    tree.push_back({"guide/g" + std::to_string(i) + ".md", body});
  }
  return tree;
}

const std::string kQuestion =
    "How do Krylov solvers interact with preconditioners?";

// Shares one knowledge base across the suite; each test builds its own
// workflow so fault plans never leak between tests.
class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new rag::KnowledgeBase(rag::KnowledgeBase::build(chaos_corpus()));
  }
  static std::unique_ptr<rag::AugmentedWorkflow> make_workflow() {
    return std::make_unique<rag::AugmentedWorkflow>(
        *kb_, rag::PipelineArm::RagRerank, llm::model_config("sim-gpt-4o"));
  }
  static rag::KnowledgeBase* kb_;
};

rag::KnowledgeBase* ChaosTest::kb_ = nullptr;

// --- The degradation ladder, rung by rung ---------------------------------

TEST_F(ChaosTest, LlmPermanentFaultDegradesToExtractive) {
  auto workflow = make_workflow();
  res::FaultPlan plan;
  plan.script(res::Stage::Llm, {res::FaultKind::Permanent});
  workflow->set_fault_plan(&plan);
  res::Resilience engine;
  res::RequestContext ctx = engine.make_context();

  const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
  EXPECT_EQ(out.degradation, res::DegradationLevel::Extractive);
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.response.mode, "degraded-extractive");
  EXPECT_EQ(out.response.text.rfind("[degraded]", 0), 0u);
  EXPECT_FALSE(out.retrieval.contexts.empty());
  EXPECT_FALSE(out.response.used_context_ids.empty());
  EXPECT_EQ(ctx.llm_attempts, 1u);  // permanent errors are not retried
  EXPECT_EQ(ctx.retries, 0u);
}

TEST_F(ChaosTest, RerankTimeoutServesUnrerankedRetrieval) {
  auto workflow = make_workflow();
  res::FaultPlan plan;
  plan.script(res::Stage::Rerank, {res::FaultKind::Timeout});
  workflow->set_fault_plan(&plan);
  res::Resilience engine;
  res::RequestContext ctx = engine.make_context();

  const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
  EXPECT_EQ(out.degradation, res::DegradationLevel::Unreranked);
  EXPECT_TRUE(out.retrieval.rerank_degraded);
  EXPECT_FALSE(out.retrieval.contexts.empty());
  // The LLM stage itself succeeded on the unreranked contexts.
  EXPECT_NE(out.response.mode.rfind("degraded", 0), 0u);
  EXPECT_FALSE(out.response.text.empty());
}

TEST_F(ChaosTest, RetrievalLostPastHedgesAnswersParametrically) {
  auto workflow = make_workflow();
  res::FaultPlan plan;
  plan.script(res::Stage::VectorSearch,
              {res::FaultKind::Permanent, res::FaultKind::Permanent});
  workflow->set_fault_plan(&plan, /*search_hedges=*/1);
  res::Resilience engine;
  res::RequestContext ctx = engine.make_context();

  const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
  EXPECT_EQ(out.degradation, res::DegradationLevel::NoRetrieval);
  EXPECT_TRUE(out.retrieval.contexts.empty());
  EXPECT_FALSE(out.response.text.empty());
}

TEST_F(ChaosTest, HedgeRecoversASingleVectorSearchFault) {
  auto workflow = make_workflow();
  res::FaultPlan plan;
  plan.script(res::Stage::VectorSearch, {res::FaultKind::Transient});
  workflow->set_fault_plan(&plan, /*search_hedges=*/1);
  res::Resilience engine;
  res::RequestContext ctx = engine.make_context();

  const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
  EXPECT_EQ(out.degradation, res::DegradationLevel::Full);
  EXPECT_FALSE(out.retrieval.contexts.empty());
  EXPECT_EQ(plan.counts(res::Stage::VectorSearch).transient, 1u);
  EXPECT_EQ(plan.counts(res::Stage::VectorSearch).calls, 2u);  // fault + hedge
}

TEST_F(ChaosTest, TransientLlmFaultIsRetriedToFullAnswer) {
  auto workflow = make_workflow();
  res::FaultPlan plan;
  plan.script(res::Stage::Llm, {res::FaultKind::Transient});
  workflow->set_fault_plan(&plan);
  res::Resilience engine;  // default retry: 3 attempts
  res::RequestContext ctx = engine.make_context();

  const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
  EXPECT_EQ(out.degradation, res::DegradationLevel::Full);
  EXPECT_EQ(ctx.llm_attempts, 2u);
  EXPECT_EQ(ctx.retries, 1u);
  // The backoff was charged to the budget, not slept.
  EXPECT_GT(ctx.budget.spent_seconds(), 0.0);
  EXPECT_FALSE(out.response.text.empty());
}

TEST_F(ChaosTest, TinyDeadlineAbandonsTheLlmStage) {
  auto workflow = make_workflow();
  res::ResilienceOptions opts;
  opts.request_deadline_seconds = 0.001;  // far below one simulated response
  res::Resilience engine(opts);
  res::RequestContext ctx = engine.make_context();

  const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
  EXPECT_EQ(out.degradation, res::DegradationLevel::Extractive);
  EXPECT_TRUE(ctx.deadline_exceeded);
  EXPECT_TRUE(ctx.budget.exhausted());
  // The invariant under any fault mix: spent never exceeds the budget.
  EXPECT_LE(ctx.budget.spent_seconds(), ctx.budget.budget_seconds() + 1e-9);
}

TEST_F(ChaosTest, TimeoutFaultConsumesTheWholeBudget) {
  auto workflow = make_workflow();
  res::FaultPlan plan;
  plan.script(res::Stage::Llm, {res::FaultKind::Timeout});
  workflow->set_fault_plan(&plan);
  res::Resilience engine;
  res::RequestContext ctx = engine.make_context();

  const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
  EXPECT_EQ(out.degradation, res::DegradationLevel::Extractive);
  EXPECT_TRUE(ctx.deadline_exceeded);
  EXPECT_TRUE(ctx.budget.exhausted());
  EXPECT_EQ(ctx.llm_attempts, 1u);  // a hang is never retried
}

// --- The circuit breaker on a scripted schedule ---------------------------

TEST_F(ChaosTest, BreakerTransitionsMatchScriptedSchedule) {
  auto workflow = make_workflow();
  res::FaultPlan plan;
  plan.script(res::Stage::Llm,
              {res::FaultKind::Transient, res::FaultKind::Transient,
               res::FaultKind::Transient, res::FaultKind::Transient});
  workflow->set_fault_plan(&plan);

  pkb::util::SimClock clock;
  res::ResilienceOptions opts;
  opts.llm_retry.max_attempts = 1;  // one attempt per request: no retries
  opts.breaker.window = 8;
  opts.breaker.min_samples = 4;
  opts.breaker.failure_threshold = 0.5;
  opts.breaker.open_seconds = 30.0;
  opts.breaker.half_open_probes = 1;
  res::Resilience engine(opts, [&clock] { return clock.now(); });
  using State = res::CircuitBreaker::State;

  // Requests 1-3: failures accumulate but stay below min_samples.
  for (int i = 0; i < 3; ++i) {
    res::RequestContext ctx = engine.make_context();
    const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
    EXPECT_EQ(out.degradation, res::DegradationLevel::Extractive);
    EXPECT_EQ(engine.breaker().state(), State::Closed) << "request " << i + 1;
  }
  // Request 4: min_samples met at 100% failure rate — the breaker opens.
  {
    res::RequestContext ctx = engine.make_context();
    (void)workflow->ask(kQuestion, &ctx);
    EXPECT_EQ(engine.breaker().state(), State::Open);
  }
  // Request 5: short-circuited without touching the LLM.
  {
    res::RequestContext ctx = engine.make_context();
    const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
    EXPECT_TRUE(ctx.breaker_short_circuit);
    EXPECT_EQ(ctx.llm_attempts, 0u);
    EXPECT_EQ(out.degradation, res::DegradationLevel::Extractive);
    EXPECT_EQ(engine.breaker().state(), State::Open);
  }
  // The script is exhausted (the LLM would now succeed), but the cooldown
  // has not elapsed: still short-circuiting.
  clock.advance(29.0);
  {
    res::RequestContext ctx = engine.make_context();
    (void)workflow->ask(kQuestion, &ctx);
    EXPECT_TRUE(ctx.breaker_short_circuit);
    EXPECT_EQ(engine.breaker().state(), State::Open);
  }
  // Past the cooldown: the next request is the half-open probe; it succeeds
  // and closes the breaker.
  clock.advance(2.0);
  {
    res::RequestContext ctx = engine.make_context();
    const rag::WorkflowOutcome out = workflow->ask(kQuestion, &ctx);
    EXPECT_EQ(out.degradation, res::DegradationLevel::Full);
    EXPECT_EQ(ctx.llm_attempts, 1u);
    EXPECT_EQ(engine.breaker().state(), State::Closed);
  }
}

// --- The serving layer: degraded answers and the cache --------------------

TEST_F(ChaosTest, DegradedAnswersExpireOnTheShortTtl) {
  auto workflow = make_workflow();
  res::FaultPlan plan;
  plan.script(res::Stage::Llm, {res::FaultKind::Permanent});
  workflow->set_fault_plan(&plan);
  res::Resilience engine;

  pkb::util::SimClock cache_clock;
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.resilience = &engine;
  opts.degraded_answer_ttl_seconds = 5.0;
  opts.cache_clock = [&cache_clock] { return cache_clock.now(); };
  serve::Server server(*workflow, opts);

  // The outage answer is served degraded and cached on the short TTL.
  const rag::WorkflowOutcome first = server.ask(kQuestion);
  EXPECT_EQ(first.degradation, res::DegradationLevel::Extractive);
  EXPECT_EQ(server.stats().degraded, 1u);

  // Within the TTL the degraded answer is a legitimate hit.
  const rag::WorkflowOutcome again = server.ask(kQuestion);
  EXPECT_TRUE(again.degraded());
  EXPECT_EQ(server.stats().computed, 1u);

  // Past the TTL (fault cleared: the script is exhausted) the next ask
  // recomputes and the full answer replaces the degraded one.
  cache_clock.advance(6.0);
  const rag::WorkflowOutcome healed = server.ask(kQuestion);
  EXPECT_EQ(healed.degradation, res::DegradationLevel::Full);
  EXPECT_EQ(server.stats().computed, 2u);
  EXPECT_EQ(server.stats().degraded, 1u);

  // The healed full answer now lives at the cache-wide policy: still a hit
  // long after the degraded TTL would have expired it.
  cache_clock.advance(100.0);
  const rag::WorkflowOutcome cached = server.ask(kQuestion);
  EXPECT_EQ(cached.degradation, res::DegradationLevel::Full);
  EXPECT_EQ(server.stats().computed, 2u);
}

TEST_F(ChaosTest, DegradedAnswersNeverCachedWhenTtlIsZero) {
  auto workflow = make_workflow();
  res::FaultPlan plan;
  plan.script(res::Stage::Llm, {res::FaultKind::Permanent});
  workflow->set_fault_plan(&plan);
  res::Resilience engine;

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.resilience = &engine;
  opts.degraded_answer_ttl_seconds = 0.0;  // never cache degraded answers
  serve::Server server(*workflow, opts);

  const rag::WorkflowOutcome first = server.ask(kQuestion);
  EXPECT_TRUE(first.degraded());
  // The very next ask recomputes immediately (fault cleared) — the
  // degraded answer never entered the cache.
  const rag::WorkflowOutcome second = server.ask(kQuestion);
  EXPECT_EQ(second.degradation, res::DegradationLevel::Full);
  EXPECT_EQ(server.stats().computed, 2u);
}

// --- Ingest-build aborts --------------------------------------------------

TEST_F(ChaosTest, IngestFaultAbortsBuildKeepingBaseGeneration) {
  rag::KnowledgeBase kb = rag::KnowledgeBase::build(chaos_corpus());
  ingest::Ingestor ingestor(kb);
  res::FaultPlan plan;
  plan.script(res::Stage::Ingest, {res::FaultKind::Permanent});
  ingestor.set_fault_plan(&plan);

  const rag::SnapshotPtr aborted = ingestor.ingest_qa(
      "qa/1.md", "GMRES restarts", "When does GMRES restart?",
      "After `-ksp_gmres_restart` iterations.");
  EXPECT_EQ(aborted, nullptr);
  EXPECT_EQ(kb.generation(), 1u);  // readers keep the base generation
  EXPECT_EQ(ingestor.stats().aborted_builds, 1u);
  EXPECT_EQ(ingestor.stats().builds, 0u);

  // The fault cleared: the same ingest now publishes generation 2.
  const rag::SnapshotPtr published = ingestor.ingest_qa(
      "qa/1.md", "GMRES restarts", "When does GMRES restart?",
      "After `-ksp_gmres_restart` iterations.");
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(kb.generation(), 2u);
  EXPECT_EQ(ingestor.stats().builds, 1u);
}

TEST_F(ChaosTest, IngestTransientFaultEarnsOneRetry) {
  rag::KnowledgeBase kb = rag::KnowledgeBase::build(chaos_corpus());
  ingest::Ingestor ingestor(kb);
  res::FaultPlan plan;
  // One transient: the retry's draw is clean and the build goes through.
  plan.script(res::Stage::Ingest, {res::FaultKind::Transient});
  ingestor.set_fault_plan(&plan);
  EXPECT_NE(ingestor.ingest_qa("qa/a.md", "T", "q?", "a."), nullptr);
  EXPECT_EQ(ingestor.stats().aborted_builds, 0u);

  // Two transients back to back: the single retry also faults — abort.
  // (A fresh plan: script() pins leading ordinals, and this ingestor's
  // first build already consumed the old plan's.)
  res::FaultPlan double_fault;
  double_fault.script(res::Stage::Ingest,
                      {res::FaultKind::Transient, res::FaultKind::Transient});
  ingestor.set_fault_plan(&double_fault);
  EXPECT_EQ(ingestor.ingest_qa("qa/b.md", "T", "q?", "a."), nullptr);
  EXPECT_EQ(ingestor.stats().aborted_builds, 1u);
  EXPECT_EQ(kb.generation(), 2u);
}

// --- End to end: the ISSUE's acceptance scenario --------------------------

// 10% LLM transient faults + 5% reranker timeouts over a concurrent request
// stream: every request completes within its deadline budget and every
// request is answered (full or degraded).
TEST_F(ChaosTest, ServerMeetsServiceLevelUnderSustainedFaults) {
  obs::global_metrics().reset();
  auto workflow = make_workflow();
  res::FaultPlanOptions fopts;
  fopts.seed = 42;
  fopts.llm.transient_rate = 0.10;
  fopts.rerank.timeout_rate = 0.05;
  res::FaultPlan plan(fopts);
  workflow->set_fault_plan(&plan);

  res::ResilienceOptions ropts;
  ropts.request_deadline_seconds = 120.0;  // virtual seconds
  res::Resilience engine(ropts);

  serve::ServerOptions opts;
  opts.workers = 4;
  opts.resilience = &engine;
  serve::Server server(*workflow, opts);

  const std::size_t kRequests = 80;
  std::vector<std::string> questions;
  questions.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    questions.push_back(kQuestion + " (variant " + std::to_string(i) + ")");
  }
  const std::vector<rag::WorkflowOutcome> outcomes =
      server.ask_batch(questions);

  ASSERT_EQ(outcomes.size(), kRequests);
  std::size_t answered = 0;
  std::size_t degraded = 0;
  for (const rag::WorkflowOutcome& out : outcomes) {
    if (!out.response.text.empty()) ++answered;
    if (out.degraded()) ++degraded;
    // Nothing worse than the ladder allows, and no silent failures.
    EXPECT_LE(static_cast<int>(out.degradation),
              static_cast<int>(res::DegradationLevel::Unavailable));
  }
  // >= 99% answered; with the ladder in place that is in fact 100%.
  EXPECT_GE(answered, (kRequests * 99 + 99) / 100);
  EXPECT_EQ(server.stats().degraded, degraded);

  // Faults really were injected (the plan is deterministic in its seed).
  EXPECT_GT(plan.counts(res::Stage::Llm).transient, 0u);
  EXPECT_GT(plan.counts(res::Stage::Rerank).timeout, 0u);

  // The deadline invariant: no request's budget was overdrawn — the
  // exact-max histogram over every request's spent budget stays within the
  // deadline.
  const auto spent = obs::global_metrics()
                         .histogram(obs::kResilienceBudgetSpentSeconds)
                         .snapshot();
  EXPECT_EQ(spent.count, kRequests);
  EXPECT_LE(spent.max, ropts.request_deadline_seconds + 1e-9);
}

}  // namespace
