#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "eval/rubric.h"
#include "eval/runner.h"

namespace pkb::eval {
namespace {

corpus::BenchmarkQuestion question() {
  corpus::BenchmarkQuestion q;
  q.id = 1;
  q.question = "What solver handles rectangular matrices?";
  q.required_facts = {"KSPLSQR"};
  q.ideal_facts = {"least squares", "rectangular"};
  q.decisive_symbol = "KSPLSQR";
  return q;
}

TEST(FactPresent, AlternativesAndCase) {
  EXPECT_TRUE(fact_present("use KSPLSQR here", "KSPLSQR"));
  EXPECT_TRUE(fact_present("use ksplsqr here", "KSPLSQR"));
  EXPECT_TRUE(fact_present("the b option", "a|b option|c"));
  EXPECT_FALSE(fact_present("nothing relevant", "KSPLSQR|KSPCGLS"));
}

TEST(Rubric, Score0ForEmptyOrTiny) {
  EXPECT_EQ(score_answer(question(), "").score, 0);
  EXPECT_EQ(score_answer(question(), "dunno").score, 0);
}

TEST(Rubric, Score1ForFabricatedSymbols) {
  const RubricVerdict v = score_answer(
      question(),
      "You should call KSPSolveBlocked, which handles rectangular matrices "
      "and least squares with KSPLSQR semantics automatically.");
  EXPECT_EQ(v.score, 1);
  ASSERT_FALSE(v.fabricated_symbols.empty());
  EXPECT_EQ(v.fabricated_symbols[0], "KSPSolveBlocked");
}

TEST(Rubric, SymbolsFromTheQuestionAreNotFabrications) {
  corpus::BenchmarkQuestion q;
  q.id = 2;
  q.question = "What does KSPBurb do?";
  q.required_facts = {"no PETSc function|no such"};
  const RubricVerdict v = score_answer(
      q, "There is no PETSc function or object named KSPBurb in the "
         "documentation; the KSP module provides GMRES, CG, and others.");
  EXPECT_TRUE(v.fabricated_symbols.empty());
  EXPECT_GE(v.score, 3);
}

TEST(Rubric, Score4WhenAllFactsPresent) {
  const RubricVerdict v = score_answer(
      question(),
      "Use KSPLSQR: it solves least squares problems and accepts "
      "rectangular matrices directly.");
  EXPECT_EQ(v.score, 4);
  EXPECT_TRUE(v.missing_required.empty());
  EXPECT_TRUE(v.missing_ideal.empty());
}

TEST(Rubric, Score3WhenRequiredButNotIdeal) {
  const RubricVerdict v = score_answer(
      question(), "Use KSPLSQR for this class of problems in PETSc; see the "
                  "manual page for details of the algorithm.");
  EXPECT_EQ(v.score, 3);
  EXPECT_FALSE(v.missing_ideal.empty());
}

TEST(Rubric, Score2WhenHalfRequired) {
  corpus::BenchmarkQuestion q = question();
  q.required_facts = {"KSPLSQR", "normal equations"};
  const RubricVerdict v = score_answer(
      q, "KSPLSQR is appropriate here; it is designed for this shape of "
         "system and is the standard recommendation.");
  EXPECT_EQ(v.score, 2);
}

TEST(Rubric, Score1WhenNoRequiredFacts) {
  const RubricVerdict v = score_answer(
      question(), "PETSc provides many solvers; try a few and compare the "
                  "convergence behavior on your problem.");
  EXPECT_EQ(v.score, 1);
}

TEST(Rubric, JustificationIsInformative) {
  const RubricVerdict v = score_answer(question(), "Use KSPLSQR here.");
  EXPECT_FALSE(v.justification.empty());
}

// Shared expensive fixture: database + runner.
class RunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto tree = pkb::corpus::generate_corpus();
    db_ = new rag::RagDatabase(rag::RagDatabase::build(tree));
    runner_ = new BenchmarkRunner(*db_, llm::model_config("sim-gpt-4o"));
  }
  static rag::RagDatabase* db_;
  static BenchmarkRunner* runner_;
};

rag::RagDatabase* RunnerTest::db_ = nullptr;
BenchmarkRunner* RunnerTest::runner_ = nullptr;

TEST_F(RunnerTest, ReproducesTheHeadlineOrdering) {
  const ArmReport baseline = runner_->run(rag::PipelineArm::Baseline);
  const ArmReport rag_arm = runner_->run(rag::PipelineArm::Rag);
  const ArmReport rerank = runner_->run(rag::PipelineArm::RagRerank);
  ASSERT_EQ(baseline.outcomes.size(), 37u);
  // Paper ordering: rerank-RAG > RAG > baseline.
  EXPECT_GT(rag_arm.scores.mean(), baseline.scores.mean());
  EXPECT_GE(rerank.scores.mean(), rag_arm.scores.mean());
}

TEST_F(RunnerTest, RerankArmNeverBelowThree) {
  // The paper's Fig 6b: 33 questions at 4, four at 3, none below.
  const ArmReport rerank = runner_->run(rag::PipelineArm::RagRerank);
  EXPECT_EQ(rerank.count_with_score(4), 33u);
  EXPECT_EQ(rerank.count_with_score(3), 4u);
  EXPECT_EQ(rerank.count_with_score(2), 0u);
  EXPECT_EQ(rerank.count_with_score(1), 0u);
  EXPECT_EQ(rerank.count_with_score(0), 0u);
}

TEST_F(RunnerTest, RerankNeverDegradesVsBaseline) {
  const ArmReport baseline = runner_->run(rag::PipelineArm::Baseline);
  const ArmReport rerank = runner_->run(rag::PipelineArm::RagRerank);
  const ArmComparison cmp = compare_arms(baseline, rerank);
  EXPECT_EQ(cmp.degraded, 0u);
  EXPECT_GE(cmp.improved, 20u);
}

TEST_F(RunnerTest, PlainRagImprovesManyDegradesFew) {
  const ArmReport baseline = runner_->run(rag::PipelineArm::Baseline);
  const ArmReport rag_arm = runner_->run(rag::PipelineArm::Rag);
  const ArmComparison cmp = compare_arms(baseline, rag_arm);
  EXPECT_GE(cmp.improved, 15u);
  EXPECT_LE(cmp.degraded, 6u);
  EXPECT_GT(cmp.improved, cmp.degraded * 3);
}

TEST_F(RunnerTest, RerankImprovesOverPlainRagWithBigJumps) {
  const ArmReport rag_arm = runner_->run(rag::PipelineArm::Rag);
  const ArmReport rerank = runner_->run(rag::PipelineArm::RagRerank);
  const ArmComparison cmp = compare_arms(rag_arm, rerank);
  EXPECT_GE(cmp.improved, 3u);
  EXPECT_EQ(cmp.degraded, 0u);
  EXPECT_EQ(cmp.max_gain, 3);  // the paper's "+3 points!" questions
}

TEST_F(RunnerTest, TimingsAreRecorded) {
  const ArmReport rerank = runner_->run(rag::PipelineArm::RagRerank);
  EXPECT_EQ(rerank.rag_times.count(), 37u);
  EXPECT_GT(rerank.rag_times.mean(), 0.0);
  EXPECT_GT(rerank.llm_times.mean(), 1.0);   // seconds (simulated)
  EXPECT_LT(rerank.llm_times.mean(), 30.0);
  // RAG stage is a tiny fraction of LLM latency (paper: < 11%).
  EXPECT_LT(rerank.rag_times.mean(), 0.11 * rerank.llm_times.mean());
}

TEST_F(RunnerTest, RenderersProduceTables) {
  const ArmReport baseline = runner_->run(rag::PipelineArm::Baseline);
  const ArmReport rerank = runner_->run(rag::PipelineArm::RagRerank);
  const std::string table = render_comparison_table(baseline, rerank);
  EXPECT_NE(table.find("improved:"), std::string::npos);
  EXPECT_NE(table.find("Q#"), std::string::npos);
  const std::string dist = render_score_distribution(rerank);
  EXPECT_NE(dist.find("score 4"), std::string::npos);
  EXPECT_NE(dist.find("mean:"), std::string::npos);
}

TEST_F(RunnerTest, KspburbBehaviour) {
  // Baseline fabricates; rerank-RAG refuses with the caveat.
  const std::vector<corpus::BenchmarkQuestion> qs = {
      corpus::kspburb_question()};
  const ArmReport baseline = runner_->run(rag::PipelineArm::Baseline, qs);
  const ArmReport rerank = runner_->run(rag::PipelineArm::RagRerank, qs);
  ASSERT_EQ(baseline.outcomes.size(), 1u);
  EXPECT_LE(baseline.outcomes[0].verdict.score, 1);
  EXPECT_EQ(baseline.outcomes[0].mode, "hallucination");
  EXPECT_GE(rerank.outcomes[0].verdict.score, 3);
  EXPECT_EQ(rerank.outcomes[0].mode, "grounded-caveat");
}

}  // namespace
}  // namespace pkb::eval
