// Cross-module integration and property tests: whole-pipeline invariants
// that no single module test can see.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "corpus/generator.h"
#include "eval/runner.h"
#include "post/postprocessor.h"
#include "rag/workflow.h"
#include "text/loader.h"

namespace pkb {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tree_ = new text::VirtualDir(corpus::generate_corpus());
    db_ = new rag::RagDatabase(rag::RagDatabase::build(*tree_));
  }
  static text::VirtualDir* tree_;
  static rag::RagDatabase* db_;
};

text::VirtualDir* IntegrationTest::tree_ = nullptr;
rag::RagDatabase* IntegrationTest::db_ = nullptr;

TEST_F(IntegrationTest, EveryChunkTracesBackToACorpusFile) {
  std::set<std::string> paths;
  for (const auto& file : *tree_) paths.insert(file.path);
  for (const auto& chunk : db_->chunks()) {
    const std::string source(chunk.meta("source"));
    EXPECT_TRUE(paths.contains(source)) << chunk.id;
    // Chunk text is a substring-free derivation (markup stripped), but every
    // chunk must be non-trivial.
    EXPECT_GE(chunk.text.size(), 3u) << chunk.id;
  }
}

TEST_F(IntegrationTest, RetrievedContextsAlwaysComeFromTheStore) {
  const rag::Retriever retriever(*db_, {});
  for (const corpus::BenchmarkQuestion& q : corpus::krylov_benchmark()) {
    const rag::RetrievalResult result = retriever.retrieve(q.question);
    for (const auto& ctx : result.contexts) {
      ASSERT_NE(ctx.doc, nullptr);
      EXPECT_FALSE(ctx.doc->id.empty());
    }
  }
}

TEST_F(IntegrationTest, WholeBenchmarkRunIsDeterministic) {
  const eval::BenchmarkRunner runner(*db_, llm::model_config("sim-gpt-4o"));
  const eval::ArmReport a = runner.run(rag::PipelineArm::RagRerank);
  const eval::ArmReport b = runner.run(rag::PipelineArm::RagRerank);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].answer, b.outcomes[i].answer) << "Q" << i + 1;
    EXPECT_EQ(a.outcomes[i].verdict.score, b.outcomes[i].verdict.score);
    EXPECT_DOUBLE_EQ(a.outcomes[i].llm_seconds, b.outcomes[i].llm_seconds);
  }
}

TEST_F(IntegrationTest, RerankArmNeverFabricatesSymbols) {
  // The central safety property: with grounding + reranking, no benchmark
  // answer contains an invented API symbol.
  const eval::BenchmarkRunner runner(*db_, llm::model_config("sim-gpt-4o"));
  const eval::ArmReport report = runner.run(rag::PipelineArm::RagRerank);
  for (const auto& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.verdict.fabricated_symbols.empty())
        << "Q" << outcome.question_id << " fabricated "
        << outcome.verdict.fabricated_symbols.front();
  }
}

TEST_F(IntegrationTest, AnswersSurvivePostprocessingCleanly) {
  // Box 4 over every rerank-arm answer: HTML renders, any code verifies.
  const eval::BenchmarkRunner runner(*db_, llm::model_config("sim-gpt-4o"));
  const eval::ArmReport report = runner.run(rag::PipelineArm::RagRerank);
  for (const auto& outcome : report.outcomes) {
    const post::ProcessedOutput processed =
        post::postprocess_llm_output(outcome.answer);
    EXPECT_FALSE(processed.plain_text.empty()) << "Q" << outcome.question_id;
    EXPECT_TRUE(processed.all_code_ok) << "Q" << outcome.question_id;
  }
}

TEST_F(IntegrationTest, WeakerModelsScoreWorseOnTheBaselineArm) {
  const eval::BenchmarkRunner strong(*db_, llm::model_config("sim-gpt-4o"));
  const eval::BenchmarkRunner weak(*db_, llm::model_config("sim-llama3-8b"));
  const double strong_mean =
      strong.run(rag::PipelineArm::Baseline).scores.mean();
  const double weak_mean = weak.run(rag::PipelineArm::Baseline).scores.mean();
  EXPECT_GT(strong_mean, weak_mean);
}

TEST_F(IntegrationTest, RagLiftsWeakModelsToo) {
  // The paper's RAG value proposition is model-agnostic: grounding helps
  // the small model as well.
  const eval::BenchmarkRunner weak(*db_, llm::model_config("sim-llama3-8b"));
  const double baseline = weak.run(rag::PipelineArm::Baseline).scores.mean();
  const double rerank = weak.run(rag::PipelineArm::RagRerank).scores.mean();
  EXPECT_GT(rerank, baseline + 0.5);
}

TEST_F(IntegrationTest, HistoryOfAFullRunRoundTripsThroughJson) {
  history::HistoryStore store;
  pkb::util::SimClock clock;
  rag::AugmentedWorkflow workflow(*db_, rag::PipelineArm::RagRerank,
                                  llm::model_config("sim-gpt-4o"));
  workflow.attach_history(&store, &clock);
  for (std::size_t i = 0; i < 5; ++i) {
    (void)workflow.ask(corpus::krylov_benchmark()[i].question);
  }
  ASSERT_EQ(store.size(), 5u);
  const history::HistoryStore loaded =
      history::HistoryStore::from_json(store.to_json());
  ASSERT_EQ(loaded.size(), 5u);
  for (std::size_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(loaded.get(i)->response, store.get(i)->response);
    EXPECT_EQ(loaded.get(i)->prompt, store.get(i)->prompt);
  }
  // Simulated time advanced monotonically across the interactions.
  EXPECT_GT(clock.now(), 5.0);
}

TEST_F(IntegrationTest, CorpusRoundTripsThroughDisk) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "pkb_corpus_roundtrip";
  fs::remove_all(root);
  text::write_tree_to_disk(*tree_, root.string());
  const text::DirectoryLoader loader("**/*.md");
  const text::VirtualDir loaded = loader.load_from_disk(root.string());
  EXPECT_EQ(loaded.size(), tree_->size());
  // Building a database from the disk copy gives the same chunk count.
  const rag::RagDatabase db2 = rag::RagDatabase::build(loaded);
  EXPECT_EQ(db2.chunks().size(), db_->chunks().size());
  fs::remove_all(root);
}

TEST_F(IntegrationTest, JsonModeFlowsThroughThePipeline) {
  // The LLM's JSON output mode (§III-E) composes with box-4 postprocessing.
  llm::SimLlm llm(llm::model_config("sim-gpt-4o"));
  const rag::Retriever retriever(*db_, {});
  const auto retrieval = retriever.retrieve(
      "How can I print the residual norm at every iteration?");
  llm::LlmRequest request;
  request.question = "How can I print the residual norm at every iteration?";
  for (const auto& ctx : retrieval.contexts) {
    request.contexts.push_back(
        llm::ContextDoc{ctx.doc->id, std::string(ctx.doc->meta("title")),
                        ctx.doc->text, ctx.score});
  }
  request.json_output = true;
  const llm::LlmResponse response = llm.complete(request);
  const post::ProcessedOutput processed =
      post::postprocess_llm_output(response.text);
  EXPECT_TRUE(processed.was_json);
  EXPECT_FALSE(processed.sources.empty());
  EXPECT_NE(processed.plain_text.find("-ksp_monitor"), std::string::npos);
}

}  // namespace
}  // namespace pkb
