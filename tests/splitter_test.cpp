#include "text/splitter.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/strings.h"

namespace pkb::text {
namespace {

TEST(Splitter, InvalidOptionsThrow) {
  SplitterOptions bad;
  bad.chunk_size = 0;
  EXPECT_THROW(RecursiveCharacterTextSplitter{bad}, std::invalid_argument);
  SplitterOptions overlap;
  overlap.chunk_size = 10;
  overlap.chunk_overlap = 10;
  EXPECT_THROW(RecursiveCharacterTextSplitter{overlap}, std::invalid_argument);
  SplitterOptions noseps;
  noseps.separators.clear();
  EXPECT_THROW(RecursiveCharacterTextSplitter{noseps}, std::invalid_argument);
}

TEST(Splitter, ShortTextSingleChunk) {
  RecursiveCharacterTextSplitter splitter;
  const auto chunks = splitter.split_text("short text");
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], "short text");
}

TEST(Splitter, EmptyAndWhitespaceYieldNothing) {
  RecursiveCharacterTextSplitter splitter;
  EXPECT_TRUE(splitter.split_text("").empty());
  EXPECT_TRUE(splitter.split_text("  \n\n \t ").empty());
}

TEST(Splitter, PrefersParagraphBoundaries) {
  SplitterOptions opts;
  opts.chunk_size = 30;
  opts.chunk_overlap = 0;
  RecursiveCharacterTextSplitter splitter(opts);
  const auto chunks =
      splitter.split_text("first paragraph here\n\nsecond paragraph here");
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], "first paragraph here");
  EXPECT_EQ(chunks[1], "second paragraph here");
}

TEST(Splitter, FallsBackToWordsWhenLinesTooLong) {
  SplitterOptions opts;
  opts.chunk_size = 12;
  opts.chunk_overlap = 0;
  RecursiveCharacterTextSplitter splitter(opts);
  const auto chunks = splitter.split_text("alpha beta gamma delta epsilon");
  ASSERT_GE(chunks.size(), 2u);
  for (const auto& c : chunks) EXPECT_LE(c.size(), 12u);
}

TEST(Splitter, UnbreakableTokenSurvivesIntact) {
  SplitterOptions opts;
  opts.chunk_size = 8;
  opts.chunk_overlap = 0;
  opts.separators = {"\n\n", "\n", " "};  // no character-level fallback
  RecursiveCharacterTextSplitter splitter(opts);
  const auto chunks =
      splitter.split_text("short averyverylongunbreakabletoken end");
  bool found = false;
  for (const auto& c : chunks) {
    if (c == "averyverylongunbreakabletoken") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Splitter, CharacterLevelFallbackEnforcesLimit) {
  SplitterOptions opts;
  opts.chunk_size = 8;
  opts.chunk_overlap = 0;
  RecursiveCharacterTextSplitter splitter(opts);  // default seps end with ""
  const auto chunks = splitter.split_text("abcdefghijklmnopqrstuvwxyz");
  for (const auto& c : chunks) EXPECT_LE(c.size(), 8u);
  // Reassembling the chunks recovers the original text.
  std::string joined;
  for (const auto& c : chunks) joined += c;
  EXPECT_EQ(joined, "abcdefghijklmnopqrstuvwxyz");
}

TEST(Splitter, OverlapCarriesTailContext) {
  SplitterOptions opts;
  opts.chunk_size = 20;
  opts.chunk_overlap = 8;
  RecursiveCharacterTextSplitter splitter(opts);
  const auto chunks = splitter.split_text("aa bb cc dd ee ff gg hh ii jj");
  ASSERT_GE(chunks.size(), 2u);
  // Each subsequent chunk must start with material from the previous one.
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    const std::string& prev = chunks[i - 1];
    const auto first_word = pkb::util::split_ws(chunks[i])[0];
    EXPECT_TRUE(prev.find(first_word) != std::string::npos)
        << "chunk " << i << " does not overlap its predecessor";
  }
}

TEST(Splitter, EveryChunkWithinLimitForProseCorpus) {
  SplitterOptions opts;
  opts.chunk_size = 100;
  opts.chunk_overlap = 20;
  RecursiveCharacterTextSplitter splitter(opts);
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "Sentence number " + std::to_string(i) +
            " about Krylov subspace methods and preconditioners.\n";
    if (i % 7 == 0) text += "\n";
  }
  const auto chunks = splitter.split_text(text);
  ASSERT_GT(chunks.size(), 5u);
  for (const auto& c : chunks) {
    EXPECT_LE(c.size(), 100u);
    EXPECT_FALSE(pkb::util::trim(c).empty());
  }
}

TEST(Splitter, AllContentRepresented) {
  SplitterOptions opts;
  opts.chunk_size = 64;
  opts.chunk_overlap = 16;
  RecursiveCharacterTextSplitter splitter(opts);
  const std::string text =
      "KSPGMRES restarts every 30 iterations by default.\n\nKSPCG requires a "
      "symmetric positive definite matrix.\n\nKSPLSQR solves least squares "
      "problems with rectangular matrices.";
  const auto chunks = splitter.split_text(text);
  std::string all = pkb::util::join(chunks, " ");
  EXPECT_NE(all.find("KSPGMRES"), std::string::npos);
  EXPECT_NE(all.find("KSPCG"), std::string::npos);
  EXPECT_NE(all.find("KSPLSQR"), std::string::npos);
  EXPECT_NE(all.find("rectangular"), std::string::npos);
}

TEST(Splitter, SplitDocumentsInheritsAndExtendsMetadata) {
  SplitterOptions opts;
  opts.chunk_size = 24;
  opts.chunk_overlap = 0;
  RecursiveCharacterTextSplitter splitter(opts);
  Document doc;
  doc.id = "manual/ksp.md";
  doc.text = "first piece of text\n\nsecond piece of text\n\nthird piece";
  doc.metadata["source"] = "manual/ksp.md";
  doc.metadata["title"] = "KSP";
  const auto chunks = splitter.split_documents({doc});
  ASSERT_GE(chunks.size(), 2u);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].id,
              "manual/ksp.md#" + std::to_string(i));
    EXPECT_EQ(chunks[i].meta("title"), "KSP");
    EXPECT_EQ(chunks[i].meta("source"), "manual/ksp.md");
    EXPECT_EQ(chunks[i].meta("chunk_index"), std::to_string(i));
  }
}

TEST(Splitter, SplitDocumentsAddsSourceWhenMissing) {
  RecursiveCharacterTextSplitter splitter;
  Document doc;
  doc.id = "anon-doc";
  doc.text = "content";
  const auto chunks = splitter.split_documents({doc});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].meta("source"), "anon-doc");
}

class SplitterParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SplitterParamTest, ChunkSizeInvariantHoldsAcrossConfigs) {
  const auto [size, overlap] = GetParam();
  SplitterOptions opts;
  opts.chunk_size = size;
  opts.chunk_overlap = overlap;
  RecursiveCharacterTextSplitter splitter(opts);
  std::string text;
  for (int i = 0; i < 40; ++i) {
    text += "Iterative solvers such as GMRES and CG dominate sparse linear "
            "algebra. ";
    if (i % 5 == 4) text += "\n\n";
  }
  for (const auto& c : splitter.split_text(text)) {
    EXPECT_LE(c.size(), size);
    EXPECT_FALSE(c.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SplitterParamTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{50, 0},
                      std::pair<std::size_t, std::size_t>{50, 10},
                      std::pair<std::size_t, std::size_t>{100, 25},
                      std::pair<std::size_t, std::size_t>{200, 50},
                      std::pair<std::size_t, std::size_t>{1000, 150},
                      std::pair<std::size_t, std::size_t>{2000, 400}));

}  // namespace
}  // namespace pkb::text
