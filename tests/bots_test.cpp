#include <gtest/gtest.h>

#include "bots/chat_bot.h"
#include "bots/email_bot.h"
#include "bots/mail.h"
#include "bots/platform.h"
#include "corpus/generator.h"
#include "rag/workflow.h"

namespace pkb::bots {
namespace {

TEST(Platform, ChannelsAndMembership) {
  pkb::util::SimClock clock;
  DiscordServer server(&clock);
  EXPECT_TRUE(server.create_channel("general", ChannelKind::Text));
  EXPECT_FALSE(server.create_channel("general", ChannelKind::Text));
  server.join("alice", /*is_developer=*/true);
  server.join("bob");
  EXPECT_TRUE(server.is_member("alice"));
  EXPECT_TRUE(server.is_developer("alice"));
  EXPECT_FALSE(server.is_developer("bob"));
  EXPECT_FALSE(server.is_member("carol"));
  EXPECT_EQ(server.member_count(), 2u);
}

TEST(Platform, MessagesCarryTimestamps) {
  pkb::util::SimClock clock;
  DiscordServer server(&clock);
  server.create_channel("general", ChannelKind::Text);
  server.join("alice", true);
  clock.advance(100.0);
  const auto id = server.post_message("general", "alice", "hello");
  const Channel* ch = server.channel("general");
  ASSERT_EQ(ch->messages.size(), 1u);
  EXPECT_EQ(ch->messages[0].id, id);
  EXPECT_DOUBLE_EQ(ch->messages[0].timestamp, 100.0);
}

TEST(Platform, PrivateChannelsRejectNonDevelopers) {
  pkb::util::SimClock clock;
  DiscordServer server(&clock);
  server.create_channel("petsc-users-emails-private", ChannelKind::Text,
                        /*is_private=*/true);
  server.join("dev", true);
  server.join("user", false);
  EXPECT_NO_THROW(server.post_message("petsc-users-emails-private", "dev",
                                      "internal"));
  EXPECT_THROW(server.post_message("petsc-users-emails-private", "user",
                                   "sneaky"),
               std::invalid_argument);
}

TEST(Platform, ForumPostsAndLookup) {
  pkb::util::SimClock clock;
  DiscordServer server(&clock);
  server.create_channel("forum", ChannelKind::Forum);
  const auto post_id = server.create_post("forum", "Solver diverges");
  server.add_to_post("forum", post_id, "email-bot", "first message");
  server.add_to_post("forum", post_id, "email-bot", "second message");
  const ForumPost* post = server.find_post("forum", "Solver diverges");
  ASSERT_NE(post, nullptr);
  EXPECT_EQ(post->id, post_id);
  EXPECT_EQ(post->messages.size(), 2u);
  EXPECT_EQ(server.find_post("forum", "nope"), nullptr);
  EXPECT_THROW(server.create_post("nonexistent", "t"), std::invalid_argument);
  EXPECT_THROW(server.add_to_post("forum", 9999, "a", "b"),
               std::invalid_argument);
}

TEST(Platform, WebhooksPostIntoBoundChannel) {
  pkb::util::SimClock clock;
  DiscordServer server(&clock);
  server.create_channel("notify", ChannelKind::Text, true);
  const std::string url = server.create_webhook("notify");
  const auto id = server.post_via_webhook(url, "ping");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(server.channel("notify")->messages.size(), 1u);
  EXPECT_EQ(server.channel("notify")->messages[0].author, "webhook");
  EXPECT_FALSE(server.post_via_webhook("webhook://bogus", "x").has_value());
}

TEST(Platform, DeleteAndFindMessage) {
  pkb::util::SimClock clock;
  DiscordServer server(&clock);
  server.create_channel("forum", ChannelKind::Forum);
  const auto post_id = server.create_post("forum", "t");
  const auto msg_id = server.add_to_post("forum", post_id, "bot", "draft");
  ASSERT_NE(server.find_message("forum", msg_id), nullptr);
  EXPECT_TRUE(server.delete_message("forum", msg_id));
  EXPECT_EQ(server.find_message("forum", msg_id), nullptr);
  EXPECT_FALSE(server.delete_message("forum", msg_id));
}

TEST(Mail, ThreadKeyNormalization) {
  EXPECT_EQ(thread_key("Re: Re: solver question"), "solver question");
  EXPECT_EQ(thread_key("  Fwd: RE: help  "), "help");
  EXPECT_EQ(thread_key("plain subject"), "plain subject");
}

TEST(Mail, QuoteStripping) {
  const std::string body =
      "Thanks for the reply!\n"
      "> earlier quoted text\n"
      "> more quote\n"
      "On Monday, Barry wrote:\n"
      "My actual new content.\n";
  const std::string cleaned = strip_quoted_lines(body);
  EXPECT_EQ(cleaned.find("quoted text"), std::string::npos);
  EXPECT_EQ(cleaned.find("wrote:"), std::string::npos);
  EXPECT_NE(cleaned.find("Thanks for the reply!"), std::string::npos);
  EXPECT_NE(cleaned.find("My actual new content."), std::string::npos);
}

TEST(Mail, UrlDefenseReversal) {
  const std::string body =
      "see https://urldefense.us/v3/__https://petsc.org/release/manual__;"
      "Xy0Zq$ for details";
  EXPECT_EQ(revert_url_defense(body),
            "see https://petsc.org/release/manual for details");
  // No-op without the wrapper.
  EXPECT_EQ(revert_url_defense("plain https://petsc.org"),
            "plain https://petsc.org");
}

TEST(Mail, ListFanOutAndArchive) {
  pkb::util::SimClock clock;
  MailingList list("petsc-users@mcs.anl.gov", &clock);
  Mailbox alice("alice@univ.edu");
  Mailbox bot("petscbot@gmail.com");
  list.subscribe(&alice);
  list.subscribe(&bot);
  clock.advance(50);
  list.post("bob@lab.gov", "solver help", "my KSP diverges");
  EXPECT_EQ(list.archive().size(), 1u);
  EXPECT_EQ(alice.unread().size(), 1u);
  EXPECT_EQ(bot.unread().size(), 1u);
  EXPECT_DOUBLE_EQ(bot.unread()[0]->timestamp, 50.0);
  EXPECT_TRUE(bot.mark_read(bot.unread()[0]->id));
  EXPECT_FALSE(bot.has_unread());
  EXPECT_EQ(alice.unread().size(), 1u);  // per-mailbox flags
}

// --- end-to-end Fig 5 workflow -------------------------------------------

class Fig5Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new rag::RagDatabase(
        rag::RagDatabase::build(pkb::corpus::generate_corpus()));
  }
  void SetUp() override {
    clock_ = std::make_unique<pkb::util::SimClock>();
    server_ = std::make_unique<DiscordServer>(clock_.get());
    server_->create_channel("petsc-users-notification", ChannelKind::Text,
                            true);
    server_->create_channel("petsc-users-emails", ChannelKind::Forum, true);
    server_->join("barry", /*is_developer=*/true);
    server_->join("jed", /*is_developer=*/true);
    server_->join("random-user", false);

    list_ = std::make_unique<MailingList>("petsc-users@mcs.anl.gov",
                                          clock_.get());
    bot_mailbox_ = std::make_unique<Mailbox>("petscbot@gmail.com");
    list_->subscribe(bot_mailbox_.get());

    webhook_ = server_->create_webhook("petsc-users-notification");
    poller_ = std::make_unique<GmailPoller>(bot_mailbox_.get(), server_.get(),
                                            webhook_, "petscbot@gmail.com");
    email_bot_ = std::make_unique<EmailBot>(bot_mailbox_.get(), server_.get(),
                                            "petsc-users-notification",
                                            "petsc-users-emails");
    workflow_ = std::make_unique<rag::AugmentedWorkflow>(
        *db_, rag::PipelineArm::RagRerank, llm::model_config("sim-gpt-4o"));
    chat_bot_ = std::make_unique<ChatBot>(workflow_.get(), server_.get(),
                                          list_.get(), "petsc-users-emails",
                                          "petscbot@gmail.com");
  }

  static rag::RagDatabase* db_;
  std::unique_ptr<pkb::util::SimClock> clock_;
  std::unique_ptr<DiscordServer> server_;
  std::unique_ptr<MailingList> list_;
  std::unique_ptr<Mailbox> bot_mailbox_;
  std::string webhook_;
  std::unique_ptr<GmailPoller> poller_;
  std::unique_ptr<EmailBot> email_bot_;
  std::unique_ptr<rag::AugmentedWorkflow> workflow_;
  std::unique_ptr<ChatBot> chat_bot_;
};

rag::RagDatabase* Fig5Test::db_ = nullptr;

TEST_F(Fig5Test, EmailFlowsIntoForumPost) {
  list_->post("user@univ.edu", "rectangular systems",
              "Can I use KSP to solve a system where the matrix is not "
              "square, only rectangular?");
  EXPECT_TRUE(poller_->poll());
  EXPECT_EQ(email_bot_->process_notifications(), 1u);
  const ForumPost* post =
      server_->find_post("petsc-users-emails", "rectangular systems");
  ASSERT_NE(post, nullptr);
  ASSERT_EQ(post->messages.size(), 1u);
  EXPECT_NE(post->messages[0].content.find("user@univ.edu"),
            std::string::npos);
  // Idle poll sends nothing.
  EXPECT_FALSE(poller_->poll());
}

TEST_F(Fig5Test, ThreadedRepliesJoinTheSamePost) {
  list_->post("user@univ.edu", "solver blows up", "first message");
  poller_->poll();
  email_bot_->process_notifications();
  list_->post("user@univ.edu", "Re: solver blows up", "follow-up detail");
  poller_->poll();
  email_bot_->process_notifications();
  const ForumPost* post =
      server_->find_post("petsc-users-emails", "solver blows up");
  ASSERT_NE(post, nullptr);
  EXPECT_EQ(post->messages.size(), 2u);
}

TEST_F(Fig5Test, ReplyDraftSendReachesTheList) {
  list_->post("user@univ.edu", "rectangular systems",
              "Can I use KSP to solve a system where the matrix is not "
              "square, only rectangular?");
  poller_->poll();
  email_bot_->process_notifications();
  const ForumPost* post =
      server_->find_post("petsc-users-emails", "rectangular systems");
  ASSERT_NE(post, nullptr);

  const auto draft_id = chat_bot_->handle_reply_command(post->id, "barry");
  ASSERT_TRUE(draft_id.has_value());
  const Message* draft =
      server_->find_message("petsc-users-emails", *draft_id);
  ASSERT_NE(draft, nullptr);
  EXPECT_EQ(draft->tags.at("status"), "draft");
  EXPECT_NE(draft->content.find("[buttons: send | discard | revise]"),
            std::string::npos);
  // The draft is grounded in the KB: it should mention the right solver.
  EXPECT_NE(draft->content.find("KSPLSQR"), std::string::npos);

  EXPECT_EQ(chat_bot_->press_send(*draft_id, "barry"), ButtonResult::Ok);
  ASSERT_EQ(list_->archive().size(), 2u);  // original + reply
  const Email& reply = list_->archive().back();
  EXPECT_EQ(reply.from, "petscbot@gmail.com");
  EXPECT_EQ(reply.subject, "Re: rectangular systems");
  EXPECT_NE(reply.body.find("sent on behalf of the PETSc team by barry"),
            std::string::npos);
  EXPECT_EQ(chat_bot_->emails_sent(), 1u);
  // Tagged in Discord.
  const Message* sent = server_->find_message("petsc-users-emails", *draft_id);
  EXPECT_EQ(sent->tags.at("status"), "sent");
  EXPECT_EQ(sent->tags.at("signed-by"), "barry");
  // The bot's own email is ignored by the poller (no re-post loop).
  EXPECT_FALSE(poller_->poll());
}

TEST_F(Fig5Test, DiscardDeletesDraftAndNothingReachesTheList) {
  list_->post("user@univ.edu", "question", "How do I monitor the residual?");
  poller_->poll();
  email_bot_->process_notifications();
  const ForumPost* post = server_->find_post("petsc-users-emails", "question");
  const auto draft_id = chat_bot_->handle_reply_command(post->id, "jed");
  ASSERT_TRUE(draft_id.has_value());
  EXPECT_EQ(chat_bot_->press_discard(*draft_id, "jed"), ButtonResult::Ok);
  EXPECT_EQ(server_->find_message("petsc-users-emails", *draft_id), nullptr);
  EXPECT_EQ(list_->archive().size(), 1u);  // only the user's email
  // Buttons on a resolved draft fail.
  EXPECT_EQ(chat_bot_->press_send(*draft_id, "jed"),
            ButtonResult::AlreadyResolved);
}

TEST_F(Fig5Test, ReviseRegeneratesWithGuidance) {
  list_->post("user@univ.edu", "question",
              "How do I cap the number of iterations?");
  poller_->poll();
  email_bot_->process_notifications();
  const ForumPost* post = server_->find_post("petsc-users-emails", "question");
  const auto draft_id = chat_bot_->handle_reply_command(post->id, "barry");
  ASSERT_TRUE(draft_id.has_value());
  std::uint64_t new_id = 0;
  EXPECT_EQ(chat_bot_->press_revise(*draft_id, "barry",
                                    "mention -ksp_max_it explicitly",
                                    &new_id),
            ButtonResult::Ok);
  EXPECT_NE(new_id, 0u);
  EXPECT_NE(new_id, *draft_id);
  EXPECT_EQ(server_->find_message("petsc-users-emails", *draft_id), nullptr);
  const Message* fresh = server_->find_message("petsc-users-emails", new_id);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->tags.at("status"), "draft");
  // Sending the revised draft works.
  EXPECT_EQ(chat_bot_->press_send(new_id, "barry"), ButtonResult::Ok);
}

TEST_F(Fig5Test, SafetyInvariantNonDevelopersCannotActOnDrafts) {
  list_->post("user@univ.edu", "q", "What does KSPSolve do?");
  poller_->poll();
  email_bot_->process_notifications();
  const ForumPost* post = server_->find_post("petsc-users-emails", "q");
  // /reply is developer-only.
  EXPECT_FALSE(chat_bot_->handle_reply_command(post->id, "random-user")
                   .has_value());
  const auto draft_id = chat_bot_->handle_reply_command(post->id, "barry");
  ASSERT_TRUE(draft_id.has_value());
  EXPECT_EQ(chat_bot_->press_send(*draft_id, "random-user"),
            ButtonResult::NotADeveloper);
  EXPECT_EQ(chat_bot_->press_discard(*draft_id, "random-user"),
            ButtonResult::NotADeveloper);
  // Nothing reached the list without a developer send.
  EXPECT_EQ(list_->archive().size(), 1u);
  EXPECT_EQ(chat_bot_->emails_sent(), 0u);
  // Unknown draft ids are rejected.
  EXPECT_EQ(chat_bot_->press_send(424242, "barry"),
            ButtonResult::UnknownDraft);
}

TEST_F(Fig5Test, DirectMessagesAreAnsweredImmediately) {
  const std::string reply = chat_bot_->direct_message(
      "random-user", "Which Krylov method for symmetric positive definite "
                     "matrices?");
  EXPECT_NE(reply.find("KSPCG"), std::string::npos);
  // Direct messages never touch the mailing list.
  EXPECT_TRUE(list_->archive().empty());
}

}  // namespace
}  // namespace pkb::bots
