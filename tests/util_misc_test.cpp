// Tests for Summary/Histogram, SimClock/Stopwatch, thread pool, and logging.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/clock.h"
#include "util/log.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace pkb::util {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138089935299395, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SingleSampleStddevZero) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0 / 3.0 * 2.0), 20.0);
}

TEST(Summary, PercentileClampsOutOfRangeQ) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(300), 2.0);
}

TEST(Summary, MinMaxAvgFormat) {
  Summary s;
  s.add(0.16);
  s.add(3.11);
  s.add(0.44 * 3 - 0.16 - 3.11);  // force avg 0.44 over 3 samples
  EXPECT_EQ(s.min_max_avg(2), "-1.95 / 3.11 / 0.44");
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3);    // clamps to bin 0
  h.add(42);    // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), std::out_of_range);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.1);
  h.add(0.2);
  h.add(3.5);
  const std::string art = h.render(10);
  EXPECT_NE(art.find("(2)"), std::string::npos);
  EXPECT_NE(art.find("(1)"), std::string::npos);
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(10.5);
  c.advance(4.5);
  EXPECT_DOUBLE_EQ(c.now(), 15.0);
}

TEST(SimClock, AdvanceNegativeThrows) {
  SimClock c;
  EXPECT_THROW(c.advance(-1.0), std::invalid_argument);
}

TEST(SimClock, AdvanceToOnlyMovesForward) {
  SimClock c(100.0);
  c.advance_to(50.0);
  EXPECT_DOUBLE_EQ(c.now(), 100.0);
  c.advance_to(150.0);
  EXPECT_DOUBLE_EQ(c.now(), 150.0);
}

TEST(SimClock, TimestampFormat) {
  SimClock c;
  c.advance(86400.0 + 3600.0 + 61.0);  // day 1, 01:01:01
  EXPECT_EQ(c.timestamp(), "day 1 01:01:01");
  EXPECT_EQ(SimClock::format(0.0), "day 0 00:00:00");
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  EXPECT_GE(w.seconds(), 0.0);
  EXPECT_GE(w.millis(), 0.0);
  w.reset();
  EXPECT_GE(w.seconds(), 0.0);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  std::atomic<int> n{0};
  parallel_for(5, 5, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++n;
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(
          0, 1000,
          [](std::size_t i) {
            if (i == 137) throw std::runtime_error("bad index");
          },
          4),
      std::runtime_error);
}

TEST(Log, LevelThresholdGates) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Emitting below the threshold must be a no-op (no crash, no output check
  // needed — exercised for coverage).
  PKB_LOG(Debug, "test") << "suppressed " << 42;
  set_log_level(old);
}

}  // namespace
}  // namespace pkb::util
