#include "text/markdown.h"

#include <gtest/gtest.h>

namespace pkb::text {
namespace {

TEST(Markdown, ParsesHeadingLevels) {
  const auto blocks = parse_markdown("# Title\n\n### Sub\n");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].type, MdBlock::Type::Heading);
  EXPECT_EQ(blocks[0].level, 1);
  EXPECT_EQ(blocks[0].text, "Title");
  EXPECT_EQ(blocks[1].level, 3);
}

TEST(Markdown, HashWithoutSpaceIsNotHeading) {
  const auto blocks = parse_markdown("#notaheading\n");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].type, MdBlock::Type::Paragraph);
}

TEST(Markdown, ParagraphJoinsContiguousLines) {
  const auto blocks = parse_markdown("line one\nline two\n\nnext para\n");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].text, "line one line two");
  EXPECT_EQ(blocks[1].text, "next para");
}

TEST(Markdown, CodeFenceKeepsBodyVerbatim) {
  const auto blocks =
      parse_markdown("```c\nKSPCreate(comm, &ksp);\n  indented;\n```\n");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].type, MdBlock::Type::CodeFence);
  EXPECT_EQ(blocks[0].language, "c");
  EXPECT_EQ(blocks[0].text, "KSPCreate(comm, &ksp);\n  indented;");
}

TEST(Markdown, UnterminatedFenceConsumesRest) {
  const auto blocks = parse_markdown("```\ncode\nmore");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].text, "code\nmore");
}

TEST(Markdown, BulletList) {
  const auto blocks = parse_markdown("- alpha\n- beta\n* gamma\n");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].type, MdBlock::Type::List);
  EXPECT_FALSE(blocks[0].ordered);
  EXPECT_EQ(blocks[0].items,
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST(Markdown, OrderedList) {
  const auto blocks = parse_markdown("1. first\n2. second\n10. tenth\n");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_TRUE(blocks[0].ordered);
  ASSERT_EQ(blocks[0].items.size(), 3u);
  EXPECT_EQ(blocks[0].items[2], "tenth");
}

TEST(Markdown, ListContinuationLinesAppend) {
  const auto blocks = parse_markdown("- item one\n  continues here\n- two\n");
  ASSERT_EQ(blocks.size(), 1u);
  ASSERT_EQ(blocks[0].items.size(), 2u);
  EXPECT_EQ(blocks[0].items[0], "item one continues here");
}

TEST(Markdown, Table) {
  const auto blocks = parse_markdown(
      "| Solver | Use |\n|---|---|\n| KSPCG | SPD |\n| KSPGMRES | general |\n");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].type, MdBlock::Type::Table);
  ASSERT_EQ(blocks[0].rows.size(), 3u);
  EXPECT_EQ(blocks[0].rows[0],
            (std::vector<std::string>{"Solver", "Use"}));
  EXPECT_EQ(blocks[0].rows[2][0], "KSPGMRES");
}

TEST(Markdown, BlockQuoteMerged) {
  const auto blocks = parse_markdown("> quoted line\n> second line\n");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].type, MdBlock::Type::BlockQuote);
  EXPECT_EQ(blocks[0].text, "quoted line\nsecond line");
}

TEST(Markdown, HorizontalRuleVsBullet) {
  const auto blocks = parse_markdown("---\n\n- real bullet\n");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].type, MdBlock::Type::HorizontalRule);
  EXPECT_EQ(blocks[1].type, MdBlock::Type::List);
}

TEST(StripInline, RemovesEmphasisKeepsCode) {
  EXPECT_EQ(strip_inline("use **bold** and *em* and `KSPSolve()`"),
            "use bold and em and KSPSolve()");
}

TEST(StripInline, LinkBecomesText) {
  EXPECT_EQ(strip_inline("see [the manual](https://petsc.org/manual) now"),
            "see the manual now");
}

TEST(StripInline, UnderscoreInsideIdentifierKept) {
  EXPECT_EQ(strip_inline("-ksp_type stays"), "-ksp_type stays");
  EXPECT_EQ(strip_inline("pc_type too"), "pc_type too");
}

TEST(StripMarkdown, FlattensStructure) {
  const std::string md =
      "# KSPGMRES\n\nGeneralized Minimal RESidual method.\n\n- restart "
      "default 30\n\n```c\nKSPSetType(ksp, KSPGMRES);\n```\n";
  const std::string plain = strip_markdown(md);
  EXPECT_NE(plain.find("KSPGMRES"), std::string::npos);
  EXPECT_NE(plain.find("restart default 30"), std::string::npos);
  EXPECT_NE(plain.find("KSPSetType(ksp, KSPGMRES);"), std::string::npos);
  EXPECT_EQ(plain.find('#'), std::string::npos);
}

TEST(ExtractLinks, FindsAllInOrder) {
  const auto links =
      extract_links("[a](u1) text [b](u2)\nand [c](u3)");
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0].text, "a");
  EXPECT_EQ(links[0].url, "u1");
  EXPECT_EQ(links[2].url, "u3");
}

TEST(ExtractLinks, IgnoresBareBrackets) {
  EXPECT_TRUE(extract_links("array[3] = x; [note]").empty());
}

TEST(ExtractSections, SplitsOnHeadings) {
  const std::string md =
      "preamble text\n\n# One\nbody one\n\n## Sub\nsub body\n\n# Two\nbody "
      "two\n";
  const auto sections = extract_sections(md);
  ASSERT_EQ(sections.size(), 4u);
  EXPECT_EQ(sections[0].title, "");
  EXPECT_EQ(sections[0].level, 0);
  EXPECT_EQ(sections[1].title, "One");
  EXPECT_EQ(sections[2].title, "Sub");
  EXPECT_EQ(sections[2].level, 2);
  EXPECT_EQ(sections[3].body, "body two");
}

TEST(ExtractSections, HeadingInsideCodeFenceIgnored) {
  const std::string md = "# Top\n```\n# not a heading\n```\nafter\n";
  const auto sections = extract_sections(md);
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].title, "Top");
  EXPECT_NE(sections[0].body.find("# not a heading"), std::string::npos);
}

TEST(FirstHeading, FindsTitleOrEmpty) {
  EXPECT_EQ(first_heading("text\n# Title\nmore"), "Title");
  EXPECT_EQ(first_heading("no headings"), "");
}

TEST(Markdown, EmptyInput) {
  EXPECT_TRUE(parse_markdown("").empty());
  EXPECT_EQ(strip_markdown(""), "");
  EXPECT_TRUE(extract_sections("").empty());
}

}  // namespace
}  // namespace pkb::text
