#include <gtest/gtest.h>

#include <unordered_set>

#include "corpus/api_spec.h"
#include "corpus/generator.h"
#include "corpus/questions.h"
#include "text/markdown.h"
#include "util/strings.h"

namespace pkb::corpus {
namespace {

TEST(ApiTable, IsLargeAndUnique) {
  const auto& table = api_table();
  EXPECT_GE(table.size(), 90u);
  std::unordered_set<std::string> names;
  for (const ApiSpec& spec : table) {
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate spec: " << spec.name;
  }
}

TEST(ApiTable, EverySpecIsWellFormed) {
  for (const ApiSpec& spec : api_table()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.summary.empty()) << spec.name;
    EXPECT_FALSE(spec.notes.empty()) << spec.name;
    EXPECT_GE(spec.popularity, 0.0) << spec.name;
    EXPECT_LE(spec.popularity, 1.0) << spec.name;
  }
}

TEST(ApiTable, FindSpecExact) {
  ASSERT_NE(find_spec("KSPGMRES"), nullptr);
  EXPECT_EQ(find_spec("KSPGMRES")->kind, ApiKind::SolverType);
  ASSERT_NE(find_spec("-info"), nullptr);
  EXPECT_EQ(find_spec("-info")->kind, ApiKind::Option);
  EXPECT_EQ(find_spec("KSPBurb"), nullptr);
  EXPECT_EQ(find_spec(""), nullptr);
}

TEST(ApiTable, FindSpecFuzzyHandlesTyposAndBareNames) {
  // Typo within edit distance 2.
  const ApiSpec* typo = find_spec_fuzzy("KSPGMRS");
  ASSERT_NE(typo, nullptr);
  EXPECT_EQ(typo->name, "KSPGMRES");
  // Bare algorithm name resolves through the class prefix.
  const ApiSpec* bare = find_spec_fuzzy("GMRES");
  ASSERT_NE(bare, nullptr);
  EXPECT_EQ(bare->name, "KSPGMRES");
  const ApiSpec* lsqr = find_spec_fuzzy("lsqr");
  ASSERT_NE(lsqr, nullptr);
  EXPECT_EQ(lsqr->name, "KSPLSQR");
  // Fictitious name stays unresolved.
  EXPECT_EQ(find_spec_fuzzy("KSPBurb"), nullptr);
}

TEST(ApiTable, KnownSymbolUniverse) {
  EXPECT_TRUE(is_known_symbol("KSPSolve"));
  EXPECT_TRUE(is_known_symbol("-ksp_monitor"));
  // see-also references without their own page are known.
  EXPECT_TRUE(is_known_symbol("KSPGMRESSetRestart"));
  // Symbols that only occur in corpus prose are known.
  EXPECT_TRUE(is_known_symbol("MATAIJ"));
  // Fabrications are not.
  EXPECT_FALSE(is_known_symbol("KSPBurb"));
  EXPECT_FALSE(is_known_symbol("KSPSolveBlocked"));
  EXPECT_FALSE(is_known_symbol("-ksp_burb_factor"));
}

TEST(ApiTable, ManualPagePathsByKind) {
  EXPECT_EQ(manual_page_path(*find_spec("KSPGMRES")),
            "manualpages/KSP/KSPGMRES.md");
  EXPECT_EQ(manual_page_path(*find_spec("PCJACOBI")),
            "manualpages/PC/PCJACOBI.md");
  EXPECT_EQ(manual_page_path(*find_spec("MatSetValues")),
            "manualpages/Mat/MatSetValues.md");
  EXPECT_EQ(manual_page_path(*find_spec("-info")),
            "manualpages/Options/info.md");
  EXPECT_EQ(manual_page_path(*find_spec("SNESSolve")),
            "manualpages/SNES/SNESSolve.md");
  EXPECT_EQ(manual_page_path(*find_spec("PetscInitialize")),
            "manualpages/Sys/PetscInitialize.md");
}

TEST(Generator, RendersManualPageStructure) {
  const std::string md = render_manual_page(*find_spec("KSPLSQR"));
  EXPECT_NE(md.find("# KSPLSQR"), std::string::npos);
  EXPECT_NE(md.find("## Synopsis"), std::string::npos);
  EXPECT_NE(md.find("## Notes"), std::string::npos);
  EXPECT_NE(md.find("## See Also"), std::string::npos);
  EXPECT_NE(md.find("rectangular"), std::string::npos);
  // Valid Markdown: parses into multiple blocks.
  EXPECT_GT(text::parse_markdown(md).size(), 5u);
}

TEST(Generator, CorpusContainsAllPageFamilies) {
  const text::VirtualDir tree = generate_corpus();
  EXPECT_GE(tree.size(), api_table().size());
  bool has_manual = false;
  bool has_chapter = false;
  bool has_faq = false;
  bool has_tutorial = false;
  for (const auto& file : tree) {
    if (file.path.starts_with("manualpages/")) has_manual = true;
    if (file.path == "docs/manual/ksp.md") has_chapter = true;
    if (file.path == "docs/faq.md") has_faq = true;
    if (file.path.starts_with("docs/tutorials/")) has_tutorial = true;
    EXPECT_FALSE(file.content.empty()) << file.path;
  }
  EXPECT_TRUE(has_manual);
  EXPECT_TRUE(has_chapter);
  EXPECT_TRUE(has_faq);
  EXPECT_TRUE(has_tutorial);
}

TEST(Generator, Deterministic) {
  const text::VirtualDir a = generate_corpus();
  const text::VirtualDir b = generate_corpus();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].content, b[i].content);
  }
}

TEST(Generator, OptionsCanDisableFamilies) {
  CorpusOptions opts;
  opts.include_faq = false;
  opts.include_tutorial = false;
  for (const auto& file : generate_corpus(opts)) {
    EXPECT_NE(file.path, "docs/faq.md");
    EXPECT_FALSE(file.path.starts_with("docs/tutorials/"));
  }
}

TEST(Generator, CaseStudyDecisiveSentencesPresent) {
  // Case study 1 (Fig 7): the least-squares escape hatch.
  const std::string ksp_chapter = render_ksp_chapter();
  EXPECT_NE(ksp_chapter.find(
                "KSP can also be used to solve least squares problems"),
            std::string::npos);
  EXPECT_NE(ksp_chapter.find("KSPLSQR"), std::string::npos);
  // Case study 2 (Fig 8): the -info preallocation paragraph.
  const std::string mat_chapter = render_mat_chapter();
  EXPECT_NE(mat_chapter.find("the option -info will print information about "
                             "the success of preallocation"),
            std::string::npos);
}

TEST(Benchmark, ThirtySevenQuestions) {
  const auto& qs = krylov_benchmark();
  ASSERT_EQ(qs.size(), 37u);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(qs[i].id, static_cast<int>(i) + 1);
    EXPECT_FALSE(qs[i].question.empty());
    EXPECT_FALSE(qs[i].required_facts.empty()) << "Q" << qs[i].id;
    EXPECT_FALSE(qs[i].decisive_symbol.empty()) << "Q" << qs[i].id;
    EXPECT_GE(qs[i].popularity, 0.0);
    EXPECT_LE(qs[i].popularity, 1.0);
  }
}

TEST(Benchmark, DecisiveSymbolsResolveToRealSpecs) {
  for (const BenchmarkQuestion& q : krylov_benchmark()) {
    EXPECT_NE(find_spec(q.decisive_symbol), nullptr)
        << "Q" << q.id << " decisive symbol " << q.decisive_symbol;
  }
}

TEST(Benchmark, RequiredFactsExistSomewhereInTheCorpus) {
  // Every required fact must be answerable from the knowledge base: some
  // corpus file must contain at least one alternative of each fact.
  const text::VirtualDir tree = generate_corpus();
  std::string all;
  for (const auto& file : tree) all += file.content;
  const std::string all_lower = pkb::util::to_lower(all);
  for (const BenchmarkQuestion& q : krylov_benchmark()) {
    for (const std::string& fact : q.required_facts) {
      bool found = false;
      for (std::string_view alt : pkb::util::split(fact, '|')) {
        if (all_lower.find(pkb::util::to_lower(pkb::util::trim(alt))) !=
            std::string::npos) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "Q" << q.id << " fact not in corpus: " << fact;
    }
  }
}

TEST(Benchmark, KspburbIsAdversarial) {
  const BenchmarkQuestion& q = kspburb_question();
  EXPECT_NE(q.question.find("KSPBurb"), std::string::npos);
  EXPECT_FALSE(is_known_symbol("KSPBurb"));
  EXPECT_DOUBLE_EQ(q.popularity, 0.0);
}

}  // namespace
}  // namespace pkb::corpus
