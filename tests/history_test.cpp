#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "history/store.h"

namespace pkb::history {
namespace {

InteractionRecord make_record(const std::string& question,
                              const std::string& pipeline) {
  InteractionRecord r;
  r.timestamp = 100.0;
  r.question = question;
  r.response = "answer to " + question;
  r.model = "sim-gpt-4o";
  r.embedding_model = "sim-embed-3-large";
  r.reranker = "sim-flashrank";
  r.pipeline = pipeline;
  r.prompt = "prompt for " + question;
  r.context_ids = {"a#0", "b#1"};
  r.latency_seconds = 9.5;
  return r;
}

TEST(HistoryStore, AddAssignsSequentialIds) {
  HistoryStore store;
  EXPECT_EQ(store.add(make_record("q1", "rag")), 1u);
  EXPECT_EQ(store.add(make_record("q2", "rag")), 2u);
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.get(1), nullptr);
  EXPECT_EQ(store.get(1)->question, "q1");
  EXPECT_EQ(store.get(99), nullptr);
}

TEST(HistoryStore, SearchIsCaseInsensitiveOverQandA) {
  HistoryStore store;
  store.add(make_record("How do I use KSPLSQR?", "rag"));
  store.add(make_record("GMRES restart question", "rag"));
  EXPECT_EQ(store.search("ksplsqr").size(), 1u);
  EXPECT_EQ(store.search("ANSWER").size(), 2u);  // matches responses
  EXPECT_TRUE(store.search("nothing-here").empty());
}

TEST(HistoryStore, ByPipelineFilters) {
  HistoryStore store;
  store.add(make_record("q1", "baseline"));
  store.add(make_record("q2", "rag+rerank"));
  store.add(make_record("q3", "rag+rerank"));
  EXPECT_EQ(store.by_pipeline("rag+rerank").size(), 2u);
  EXPECT_EQ(store.by_pipeline("baseline").size(), 1u);
  EXPECT_TRUE(store.by_pipeline("nope").empty());
}

TEST(HistoryStore, BlindBatchAnonymizesAndShuffles) {
  HistoryStore store;
  for (int i = 0; i < 20; ++i) {
    store.add(make_record("question " + std::to_string(i), "rag"));
  }
  const auto batch = store.blind_batch("rag", 42);
  ASSERT_EQ(batch.size(), 20u);
  // Shuffled: some item is out of insertion order.
  bool out_of_order = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].record_id != i + 1) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
  // Deterministic for the same seed.
  const auto batch2 = store.blind_batch("rag", 42);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].record_id, batch2[i].record_id);
  }
}

TEST(HistoryStore, ScoringWorkflow) {
  HistoryStore store;
  const auto id = store.add(make_record("q", "rag"));
  EXPECT_FALSE(store.mean_score(id).has_value());
  EXPECT_TRUE(store.record_score(id, {"alice", 4, "ideal"}));
  EXPECT_TRUE(store.record_score(id, {"bob", 2, "partial"}));
  EXPECT_DOUBLE_EQ(store.mean_score(id).value(), 3.0);
  // Range and id validation.
  EXPECT_FALSE(store.record_score(id, {"carol", 5, ""}));
  EXPECT_FALSE(store.record_score(id, {"carol", -1, ""}));
  EXPECT_FALSE(store.record_score(999, {"carol", 3, ""}));
}

TEST(HistoryStore, JsonRoundTripPreservesEverything) {
  HistoryStore store;
  const auto id = store.add(make_record("round trip?", "rag+rerank"));
  store.record_score(id, {"alice", 3, "good"});
  HistoryStore loaded = HistoryStore::from_json(store.to_json());
  ASSERT_EQ(loaded.size(), 1u);
  const InteractionRecord* r = loaded.get(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->question, "round trip?");
  EXPECT_EQ(r->pipeline, "rag+rerank");
  EXPECT_EQ(r->context_ids, (std::vector<std::string>{"a#0", "b#1"}));
  EXPECT_DOUBLE_EQ(r->latency_seconds, 9.5);
  ASSERT_EQ(r->scores.size(), 1u);
  EXPECT_EQ(r->scores[0].scorer, "alice");
  EXPECT_EQ(r->scores[0].score, 3);
  // Ids keep incrementing after reload.
  EXPECT_EQ(loaded.add(make_record("next", "rag")), id + 1);
}

TEST(HistoryStore, ConcurrentAppendsAndReadsAreSafe) {
  HistoryStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &ids, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto id = store.add(
            make_record("q" + std::to_string(t) + "-" + std::to_string(i),
                        t % 2 == 0 ? "rag" : "rag+rerank"));
        ids[t].push_back(id);
        // Interleave reads with the appends: pointers stay valid because
        // the store's backing deque never relocates records.
        const InteractionRecord* r = store.get(id);
        EXPECT_NE(r, nullptr);
        (void)store.size();
        (void)store.by_pipeline("rag").size();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every id was assigned exactly once, densely from 1.
  std::set<std::uint64_t> all;
  for (const auto& per_thread : ids) {
    all.insert(per_thread.begin(), per_thread.end());
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(*all.begin(), 1u);
  EXPECT_EQ(*all.rbegin(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(HistoryStore, FilePersistence) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "pkb_history_test.json").string();
  HistoryStore store;
  store.add(make_record("persisted?", "baseline"));
  store.save(path);
  const HistoryStore loaded = HistoryStore::load(path);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.get(1)->question, "persisted?");
  fs::remove(path);
  EXPECT_THROW((void)HistoryStore::load("/nonexistent/h.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace pkb::history
