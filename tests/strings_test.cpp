#include "util/strings.h"

#include <gtest/gtest.h>

namespace pkb::util {
namespace {

TEST(Strings, TrimRemovesBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("inner space kept  "), "inner space kept");
}

TEST(Strings, TrimLeftAndRightAreOneSided) {
  EXPECT_EQ(trim_left("  a  "), "a  ");
  EXPECT_EQ(trim_right("  a  "), "  a");
}

TEST(Strings, SplitCharKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitCharTrailingSeparatorYieldsEmptyTail) {
  const auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitStringSeparator) {
  const auto parts = split("one--two--three", std::string_view("--"));
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "two");
}

TEST(Strings, SplitStringSeparatorNoMatchReturnsWhole) {
  const auto parts = split("abc", std::string_view("--"));
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsSkipsRuns) {
  const auto parts = split_ws("  a \t b\n\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitLinesHandlesCrLfAndNoTrailingNewline) {
  const auto lines = split_lines("a\r\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(Strings, SplitLinesPreservesInteriorBlankLines) {
  const auto lines = split_lines("a\n\nb\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::string input = "x|y|z";
  EXPECT_EQ(join(split(input, '|'), "|"), input);
}

TEST(Strings, CaseConversions) {
  EXPECT_EQ(to_lower("KSPSolve"), "kspsolve");
  EXPECT_EQ(to_upper("gmres"), "GMRES");
  EXPECT_EQ(to_lower("already lower 123"), "already lower 123");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("KSPGMRES", "KSP"));
  EXPECT_FALSE(starts_with("KSP", "KSPGMRES"));
  EXPECT_TRUE(ends_with("file.md", ".md"));
  EXPECT_FALSE(ends_with("md", "file.md"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("no match", "zz", "y"), "no match");
  EXPECT_EQ(replace_all("abab", "ab", "ba"), "baba");
}

TEST(Strings, ContainsAndICase) {
  EXPECT_TRUE(contains("the KSPLSQR solver", "KSPLSQR"));
  EXPECT_FALSE(contains("abc", "abd"));
  EXPECT_TRUE(icontains("The KSPLSQR Solver", "ksplsqr"));
  EXPECT_TRUE(iequals("GMRES", "gmres"));
  EXPECT_FALSE(iequals("GMRES", "gmre"));
}

TEST(Strings, EditDistanceBasics) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("KSPGmres", "KSPGMRES"), 4u);
  EXPECT_EQ(edit_distance("", "xyz"), 3u);
}

TEST(Strings, EditDistanceIsSymmetric) {
  EXPECT_EQ(edit_distance("solver", "solvers"),
            edit_distance("solvers", "solver"));
}

TEST(Strings, CountOccurrencesNonOverlapping) {
  EXPECT_EQ(count_occurrences("aaaa", "aa"), 2u);
  EXPECT_EQ(count_occurrences("abcabc", "abc"), 2u);
  EXPECT_EQ(count_occurrences("abc", ""), 0u);
}

TEST(Strings, RepeatAndEllipsize) {
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(repeat("x", 0), "");
  EXPECT_EQ(ellipsize("short", 10), "short");
  EXPECT_EQ(ellipsize("a very long string", 10), "a very ...");
  EXPECT_EQ(ellipsize("abcdef", 3), "abc");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Strings, IsIdentChar) {
  EXPECT_TRUE(is_ident_char('a'));
  EXPECT_TRUE(is_ident_char('Z'));
  EXPECT_TRUE(is_ident_char('0'));
  EXPECT_TRUE(is_ident_char('_'));
  EXPECT_FALSE(is_ident_char('-'));
  EXPECT_FALSE(is_ident_char(' '));
}

}  // namespace
}  // namespace pkb::util
