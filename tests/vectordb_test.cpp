#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "embed/tfidf.h"
#include "resilience/fault_plan.h"
#include "util/rng.h"
#include "vectordb/ivf.h"
#include "vectordb/vector_store.h"

namespace pkb::vectordb {
namespace {

using embed::Vector;

VectorStore random_store(std::size_t n, std::size_t dim, std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  VectorStore store;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    text::Document doc;
    doc.id = "doc-" + std::to_string(i);
    doc.metadata["parity"] = (i % 2 == 0) ? "even" : "odd";
    store.add(std::move(doc), std::move(v));
  }
  return store;
}

TEST(VectorStore, AddNormalizesAndChecksDimensions) {
  VectorStore store;
  store.add({"a", "", {}}, {3.0f, 4.0f});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.dimension(), 2u);
  EXPECT_NEAR(embed::norm(store.vec(0)), 1.0f, 1e-6);
  EXPECT_THROW(store.add({"b", "", {}}, {1.0f, 2.0f, 3.0f}),
               std::invalid_argument);
}

TEST(VectorStore, TopKOrderingAndScores) {
  VectorStore store;
  store.add({"x", "", {}}, {1.0f, 0.0f});
  store.add({"y", "", {}}, {0.0f, 1.0f});
  store.add({"xy", "", {}}, {1.0f, 1.0f});
  const auto hits = store.similarity_search({1.0f, 0.0f}, 3);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].doc->id, "x");
  EXPECT_EQ(hits[1].doc->id, "xy");
  EXPECT_EQ(hits[2].doc->id, "y");
  EXPECT_NEAR(hits[0].score, 1.0f, 1e-6);
  EXPECT_NEAR(hits[1].score, std::sqrt(0.5f), 1e-5);
  EXPECT_NEAR(hits[2].score, 0.0f, 1e-6);
}

TEST(VectorStore, KLargerThanSizeReturnsAll) {
  const VectorStore store = random_store(5, 8, 1);
  EXPECT_EQ(store.similarity_search(store.vec(0), 100).size(), 5u);
  EXPECT_TRUE(store.similarity_search(store.vec(0), 0).empty());
}

TEST(VectorStore, QueryDimensionMismatchThrows) {
  const VectorStore store = random_store(3, 8, 2);
  EXPECT_THROW((void)store.similarity_search(Vector(4, 1.0f), 2),
               std::invalid_argument);
}

TEST(VectorStore, MetadataFilterRestrictsResults) {
  const VectorStore store = random_store(20, 8, 3);
  const MetadataFilter filter = [](const text::Metadata& meta) {
    auto it = meta.find("parity");
    return it != meta.end() && it->second == "even";
  };
  const auto hits = store.similarity_search(store.vec(1), 10, &filter);
  ASSERT_FALSE(hits.empty());
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.doc->meta("parity"), "even");
  }
}

TEST(VectorStore, TopOneIsSelfForExactQuery) {
  const VectorStore store = random_store(50, 16, 4);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto hits = store.similarity_search(store.vec(i), 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].index, i);
  }
}

TEST(VectorStore, BatchSearchMatchesSerialExactly) {
  const VectorStore store = random_store(200, 16, 7);
  pkb::util::Rng rng(11);
  std::vector<Vector> queries;
  for (std::size_t q = 0; q < 24; ++q) {
    Vector v(16);
    for (float& x : v) x = static_cast<float>(rng.normal());
    queries.push_back(std::move(v));
  }
  const auto batched = store.similarity_search_batch(queries, 8);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto serial = store.similarity_search(queries[q], 8);
    ASSERT_EQ(batched[q].size(), serial.size()) << "query " << q;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bit-identical, including tie-breaks: same index, same score bits.
      EXPECT_EQ(batched[q][i].index, serial[i].index) << "query " << q;
      EXPECT_EQ(batched[q][i].score, serial[i].score) << "query " << q;
      EXPECT_EQ(batched[q][i].doc, serial[i].doc) << "query " << q;
    }
  }
}

TEST(VectorStore, BatchSearchRespectsFilterAndValidatesDims) {
  const VectorStore store = random_store(30, 8, 8);
  const MetadataFilter filter = [](const text::Metadata& meta) {
    auto it = meta.find("parity");
    return it != meta.end() && it->second == "odd";
  };
  const std::vector<Vector> queries = {store.vec(0), store.vec(1)};
  const auto batched = store.similarity_search_batch(queries, 5, &filter);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto serial = store.similarity_search(queries[q], 5, &filter);
    ASSERT_EQ(batched[q].size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(batched[q][i].index, serial[i].index);
      EXPECT_EQ(batched[q][i].doc->meta("parity"), "odd");
    }
  }
  EXPECT_TRUE(store.similarity_search_batch({}, 5).empty());
  EXPECT_THROW((void)store.similarity_search_batch({Vector(3, 1.0f)}, 2),
               std::invalid_argument);
}

TEST(VectorStore, FindId) {
  const VectorStore store = random_store(5, 4, 5);
  EXPECT_EQ(store.find_id("doc-3").value(), 3u);
  EXPECT_FALSE(store.find_id("nope").has_value());
}

TEST(VectorStore, FromDocumentsEmbedsEverything) {
  std::vector<text::Document> docs = {
      {"1", "conjugate gradient symmetric", {}},
      {"2", "gmres restart nonsymmetric", {}},
      {"3", "least squares rectangular", {}},
  };
  embed::TfidfEmbedder embedder;
  embedder.fit(docs);
  const VectorStore store = VectorStore::from_documents(docs, embedder);
  EXPECT_EQ(store.size(), 3u);
  const auto hits =
      store.similarity_search(embedder.embed("rectangular least squares"), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc->id, "3");
}

TEST(VectorStore, SaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  const VectorStore store = random_store(12, 6, 6);
  const std::string path =
      (fs::temp_directory_path() / "pkb_store_test.bin").string();
  store.save(path);
  const VectorStore loaded = VectorStore::load(path);
  ASSERT_EQ(loaded.size(), store.size());
  ASSERT_EQ(loaded.dimension(), store.dimension());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded.doc(i).id, store.doc(i).id);
    EXPECT_EQ(loaded.doc(i).metadata, store.doc(i).metadata);
    EXPECT_EQ(loaded.vec(i), store.vec(i));
  }
  fs::remove(path);
}

TEST(VectorStore, LoadRejectsGarbage) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "pkb_store_garbage.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a vector store";
  }
  EXPECT_THROW((void)VectorStore::load(path), std::runtime_error);
  EXPECT_THROW((void)VectorStore::load("/nonexistent/x.bin"),
               std::runtime_error);
  fs::remove(path);
}

// --- load() hardening: every malformed prefix is a clear error, never a
// silently corrupt store. The serialized bytes come from a real save() so
// each test corrupts exactly one aspect.

std::string store_bytes(const VectorStore& store) {
  std::ostringstream out(std::ios::binary);
  store.save(out);
  return out.str();
}

VectorStore load_bytes(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return VectorStore::load(in);
}

TEST(VectorStoreHardening, StreamRoundTripIsBitExact) {
  const VectorStore store = random_store(7, 5, 11);
  const VectorStore loaded = load_bytes(store_bytes(store));
  ASSERT_EQ(loaded.size(), store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded.doc(i).id, store.doc(i).id);
    EXPECT_EQ(loaded.vec(i), store.vec(i));  // bit-exact floats
  }
}

TEST(VectorStoreHardening, RejectsBadMagic) {
  std::string bytes = store_bytes(random_store(3, 4, 12));
  bytes[0] = 'X';
  EXPECT_THROW((void)load_bytes(bytes), std::runtime_error);
}

TEST(VectorStoreHardening, RejectsUnsupportedVersion) {
  std::string bytes = store_bytes(random_store(3, 4, 12));
  bytes[4] = 0x7F;  // u32 version little-endian low byte
  EXPECT_THROW((void)load_bytes(bytes), std::runtime_error);
}

TEST(VectorStoreHardening, RejectsImplausibleCount) {
  std::string bytes = store_bytes(random_store(3, 4, 12));
  // u64 count sits after magic (4) + version (4); make it absurd.
  for (int i = 0; i < 8; ++i) bytes[8 + i] = static_cast<char>(0xFF);
  EXPECT_THROW((void)load_bytes(bytes), std::runtime_error);
}

TEST(VectorStoreHardening, RejectsZeroDimensionWithEntries) {
  std::string bytes = store_bytes(random_store(3, 4, 12));
  // u64 dim sits after magic (4) + version (4) + count (8).
  for (int i = 0; i < 8; ++i) bytes[16 + i] = 0;
  EXPECT_THROW((void)load_bytes(bytes), std::runtime_error);
}

TEST(VectorStoreHardening, RejectsTruncationAtEveryPrefix) {
  const std::string bytes = store_bytes(random_store(4, 3, 13));
  // Any strict prefix must throw, whether it cuts a header field, a
  // string, or the float payload.
  for (std::size_t len : {std::size_t{2}, std::size_t{6}, std::size_t{12},
                          std::size_t{20}, std::size_t{30},
                          bytes.size() / 2, bytes.size() - 1}) {
    ASSERT_LT(len, bytes.size());
    EXPECT_THROW((void)load_bytes(bytes.substr(0, len)), std::runtime_error)
        << "prefix length " << len;
  }
}

TEST(VectorStoreHardening, AddPrenormalizedKeepsVectorBitIdentical) {
  VectorStore store;
  store.add({"a", "", {}}, {3.0f, 4.0f});
  VectorStore copy;
  copy.add_prenormalized(store.doc(0), store.vec(0));
  EXPECT_EQ(copy.vec(0), store.vec(0));
  // Dimension checks still apply on the prenormalized path.
  EXPECT_THROW(copy.add_prenormalized({"b", "", {}}, {1.0f, 0.0f, 0.0f}),
               std::invalid_argument);
}

// Regression: load() never restored the header dimension when the store
// was empty, so a saved dim-D empty store reloaded as dim-0 and accepted
// vectors of any size from then on.
TEST(VectorStoreHardening, EmptyStoreRoundTripKeepsDimension) {
  const VectorStore empty(5);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.dimension(), 5u);
  VectorStore loaded = load_bytes(store_bytes(empty));
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.dimension(), 5u);
  // The restored dimension is enforced, exactly as on the saved store.
  EXPECT_THROW(loaded.add({"a", "", {}}, {1.0f, 2.0f}),
               std::invalid_argument);
  loaded.add({"a", "", {}}, Vector(5, 1.0f));
  EXPECT_EQ(loaded.dimension(), 5u);
}

TEST(VectorStoreHardening, PresetDimensionConstructorEnforcesDim) {
  VectorStore store(3);
  EXPECT_EQ(store.dimension(), 3u);
  EXPECT_TRUE(store.similarity_search(Vector(3, 1.0f), 4).empty());
  EXPECT_THROW(store.add({"a", "", {}}, {1.0f, 2.0f}), std::invalid_argument);
  store.add({"a", "", {}}, {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(store.size(), 1u);
}

// Regression: similarity_search_batch drew ONE fault ordinal per batch
// while the single path draws one per query, making injected fault rates
// batch-size dependent. Both paths must now consume identical per-query
// ordinals, so FaultPlan::counts() agrees between a batch of N and N
// serial scans under the same seed.
TEST(VectorStoreHardening, BatchFaultConsultMatchesSingleOrdinals) {
  namespace res = pkb::resilience;
  const std::size_t n_queries = 16;
  std::vector<Vector> queries;
  {
    pkb::util::Rng rng(21);
    for (std::size_t q = 0; q < n_queries; ++q) {
      Vector v(8);
      for (float& x : v) x = static_cast<float>(rng.normal());
      queries.push_back(std::move(v));
    }
  }
  res::FaultPlanOptions fopts;
  fopts.seed = 42;
  fopts.vector_search.transient_rate = 0.3;

  // Serial: one consult per query.
  res::FaultPlan serial_plan(fopts);
  VectorStore serial_store = random_store(40, 8, 22);
  serial_store.set_fault_plan(&serial_plan);
  std::size_t serial_faults = 0;
  for (const Vector& q : queries) {
    try {
      (void)serial_store.similarity_search(q, 4);
    } catch (const res::FaultError&) {
      ++serial_faults;
    }
  }

  // Batched: the same per-query ordinal stream under the same seed.
  res::FaultPlan batch_plan(fopts);
  VectorStore batch_store = random_store(40, 8, 22);
  batch_store.set_fault_plan(&batch_plan);
  bool batch_faulted = false;
  try {
    (void)batch_store.similarity_search_batch(queries, 4);
  } catch (const res::FaultError&) {
    batch_faulted = true;
  }

  const res::FaultPlan::StageCounts serial_counts =
      serial_plan.counts(res::Stage::VectorSearch);
  const res::FaultPlan::StageCounts batch_counts =
      batch_plan.counts(res::Stage::VectorSearch);
  EXPECT_EQ(serial_counts.calls, n_queries);
  EXPECT_EQ(batch_counts.calls, serial_counts.calls);
  EXPECT_EQ(batch_counts.transient, serial_counts.transient);
  EXPECT_EQ(batch_counts.permanent, serial_counts.permanent);
  EXPECT_EQ(batch_counts.timeout, serial_counts.timeout);
  // With a 30% rate over 16 draws at this seed some fault fires; the batch
  // then fails as a unit even though ordinals were fully drawn.
  EXPECT_GT(serial_faults, 0u);
  EXPECT_TRUE(batch_faulted);
}

TEST(Ivf, EmptyStoreThrows) {
  VectorStore store;
  EXPECT_THROW(IvfIndex(store, {}), std::invalid_argument);
}

TEST(Ivf, SearchFindsExactMatchWithFullProbing) {
  const VectorStore store = random_store(200, 16, 7);
  IvfOptions opts;
  opts.clusters = 10;
  opts.nprobe = 10;  // probe everything -> exact
  const IvfIndex index(store, opts);
  EXPECT_EQ(index.cluster_count(), 10u);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto hits = index.search(store.vec(i), 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].index, i);
  }
}

TEST(Ivf, FullProbeMatchesExactSearch) {
  const VectorStore store = random_store(300, 16, 8);
  IvfOptions opts;
  opts.clusters = 12;
  opts.nprobe = 12;
  const IvfIndex index(store, opts);
  const auto exact = store.similarity_search(store.vec(5), 10);
  const auto approx = index.search(store.vec(5), 10);
  ASSERT_EQ(exact.size(), approx.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i].index, approx[i].index);
  }
}

TEST(Ivf, RecallImprovesWithProbes) {
  const VectorStore store = random_store(500, 24, 9);
  std::vector<Vector> queries;
  pkb::util::Rng rng(99);
  for (int i = 0; i < 12; ++i) {
    Vector q(24);
    for (float& x : q) x = static_cast<float>(rng.normal());
    queries.push_back(std::move(q));
  }
  IvfOptions low;
  low.clusters = 22;
  low.nprobe = 1;
  IvfOptions high = low;
  high.nprobe = 16;
  const double r_low = IvfIndex(store, low).recall_at_k(queries, 8);
  const double r_high = IvfIndex(store, high).recall_at_k(queries, 8);
  EXPECT_GE(r_high, r_low);
  EXPECT_GT(r_high, 0.8);
}

TEST(Ivf, DeterministicForSameSeed) {
  const VectorStore store = random_store(100, 8, 10);
  IvfOptions opts;
  opts.seed = 777;
  const IvfIndex a(store, opts);
  const IvfIndex b(store, opts);
  const auto ha = a.search(store.vec(3), 5);
  const auto hb = b.search(store.vec(3), 5);
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].index, hb[i].index);
  }
}

}  // namespace
}  // namespace pkb::vectordb
