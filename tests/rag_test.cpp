#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "rag/database.h"
#include "rag/prompts.h"
#include "rag/retriever.h"
#include "rag/workflow.h"

namespace pkb::rag {
namespace {

// The database build is the expensive part; share one across the suite.
class RagTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto tree = pkb::corpus::generate_corpus();
    db_ = new RagDatabase(RagDatabase::build(tree));
  }
  static RagDatabase* db_;
};

RagDatabase* RagTest::db_ = nullptr;

TEST_F(RagTest, DatabaseBuildProducesChunksAndIndexes) {
  EXPECT_GT(db_->source_count(), 100u);
  EXPECT_GT(db_->chunks().size(), db_->source_count() / 2);
  EXPECT_GT(db_->embedder().dimension(), 0u);
  EXPECT_EQ(db_->store().size(), db_->chunks().size());
  EXPECT_GE(db_->symbols().symbol_count(), 90u);
  for (const auto& chunk : db_->chunks()) {
    EXPECT_FALSE(chunk.text.empty());
    EXPECT_FALSE(std::string(chunk.meta("source")).empty());
  }
}

TEST_F(RagTest, ChunksRespectSplitterLimit) {
  const std::size_t limit = db_->options().splitter.chunk_size;
  for (const auto& chunk : db_->chunks()) {
    EXPECT_LE(chunk.text.size(), limit) << chunk.id;
  }
}

TEST_F(RagTest, RetrieverReturnsKCandidates) {
  RetrieverOptions opts;
  opts.reranker.clear();
  const Retriever retriever(*db_, opts);
  const RetrievalResult result =
      retriever.retrieve("How do I monitor the residual norm?");
  EXPECT_GE(result.first_pass.size(), opts.first_pass_k);
  EXPECT_GE(result.contexts.size(), opts.first_pass_k);
  EXPECT_GT(result.rag_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(result.rerank_seconds, 0.0);
}

TEST_F(RagTest, KeywordAugmentationAddsManualPages) {
  RetrieverOptions opts;  // rerank arm keeps keyword search
  const Retriever retriever(*db_, opts);
  const RetrievalResult result =
      retriever.retrieve("What does KSPBCGSL do exactly?");
  bool keyword_hit = false;
  for (const auto& ctx : result.first_pass) {
    if (ctx.via != "vector" &&
        ctx.doc->meta("source") == "manualpages/KSP/KSPBCGSL.md") {
      keyword_hit = true;
    }
    if (ctx.via == "vector+keyword" &&
        ctx.doc->meta("source") == "manualpages/KSP/KSPBCGSL.md") {
      keyword_hit = true;
    }
  }
  // The page chunks must be in the pool one way or another.
  bool in_pool = false;
  for (const auto& ctx : result.first_pass) {
    if (ctx.doc->meta("source") == "manualpages/KSP/KSPBCGSL.md") {
      in_pool = true;
    }
  }
  EXPECT_TRUE(in_pool);
  (void)keyword_hit;
}

TEST_F(RagTest, NoDuplicateCandidates) {
  const Retriever retriever(*db_, {});
  const RetrievalResult result =
      retriever.retrieve("Can I use KSPCG on a nonsymmetric matrix?");
  std::set<std::string> ids;
  for (const auto& ctx : result.first_pass) {
    EXPECT_TRUE(ids.insert(ctx.doc->id).second)
        << "duplicate candidate " << ctx.doc->id;
  }
}

TEST_F(RagTest, RerankingReordersAndTruncatesToL) {
  RetrieverOptions opts;
  const Retriever retriever(*db_, opts);
  EXPECT_TRUE(retriever.reranking_enabled());
  const RetrievalResult result = retriever.retrieve(
      "Can I use KSP to solve a system where the matrix is not square, only "
      "rectangular?");
  EXPECT_EQ(result.contexts.size(), opts.final_l);
  EXPECT_GT(result.rerank_seconds, 0.0);
  // The decisive KSPLSQR material must be in the reranked window.
  bool found = false;
  for (const auto& ctx : result.contexts) {
    if (ctx.doc->text.find("KSPLSQR") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RagTest, PromptLibraryRendersContexts) {
  const std::string prompt = PromptLibrary::render_user_prompt(
      "my question",
      {{"id1", "T1", "first context", 0.9}, {"id2", "T2", "second", 0.8}});
  EXPECT_NE(prompt.find("[1] (source: id1)"), std::string::npos);
  EXPECT_NE(prompt.find("[2] (source: id2)"), std::string::npos);
  EXPECT_NE(prompt.find("Question: my question"), std::string::npos);
  // Without contexts, only the question.
  const std::string bare = PromptLibrary::render_user_prompt("q", {});
  EXPECT_EQ(bare, "Question: q");
  EXPECT_FALSE(PromptLibrary::qa_system_prompt().empty());
  EXPECT_FALSE(PromptLibrary::email_reply_system_prompt().empty());
}

TEST_F(RagTest, WorkflowBaselineHasNoRetrieval) {
  const AugmentedWorkflow workflow(*db_, PipelineArm::Baseline,
                                   llm::model_config("sim-gpt-4o"));
  const WorkflowOutcome outcome = workflow.ask("What does KSPSolve do?");
  EXPECT_TRUE(outcome.retrieval.contexts.empty());
  EXPECT_FALSE(outcome.response.text.empty());
  EXPECT_DOUBLE_EQ(outcome.retrieval.rag_seconds(), 0.0);
}

TEST_F(RagTest, WorkflowRagArmDisablesRerankAndKeyword) {
  const AugmentedWorkflow workflow(*db_, PipelineArm::Rag,
                                   llm::model_config("sim-gpt-4o"));
  ASSERT_NE(workflow.retriever(), nullptr);
  EXPECT_FALSE(workflow.retriever()->reranking_enabled());
  EXPECT_FALSE(workflow.retriever()->options().use_keyword_search);
  const WorkflowOutcome outcome =
      workflow.ask("How do I set the relative tolerance?");
  EXPECT_FALSE(outcome.retrieval.contexts.empty());
}

TEST_F(RagTest, WorkflowRecordsHistory) {
  history::HistoryStore store;
  pkb::util::SimClock clock;
  AugmentedWorkflow workflow(*db_, PipelineArm::RagRerank,
                             llm::model_config("sim-gpt-4o"));
  workflow.attach_history(&store, &clock);
  const WorkflowOutcome outcome =
      workflow.ask("How do I monitor the residual norm?");
  EXPECT_EQ(outcome.history_id, 1u);
  ASSERT_EQ(store.size(), 1u);
  const history::InteractionRecord* record = store.get(1);
  EXPECT_EQ(record->pipeline, "rag+rerank");
  EXPECT_EQ(record->model, "sim-gpt-4o");
  EXPECT_FALSE(record->embedding_model.empty());
  EXPECT_EQ(record->reranker, "sim-flashrank");
  EXPECT_FALSE(record->context_ids.empty());
  EXPECT_NE(record->prompt.find("Context passages"), std::string::npos);
  // The clock advanced by the interaction's latency.
  EXPECT_GT(clock.now(), 0.0);
  EXPECT_NEAR(clock.now(), record->latency_seconds, 1e-9);
}

TEST_F(RagTest, WorkflowDeterministic) {
  const AugmentedWorkflow workflow(*db_, PipelineArm::RagRerank,
                                   llm::model_config("sim-gpt-4o"));
  const WorkflowOutcome a = workflow.ask("What is KSPFGMRES for?");
  const WorkflowOutcome b = workflow.ask("What is KSPFGMRES for?");
  EXPECT_EQ(a.response.text, b.response.text);
}

}  // namespace
}  // namespace pkb::rag
