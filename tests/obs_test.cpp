#include <gtest/gtest.h>

#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "llm/sim_llm.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rag/database.h"
#include "rag/workflow.h"
#include "util/log.h"
#include "util/stats.h"

namespace pkb::obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(Metrics, CounterConcurrentIncrements) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncs = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Hammer the registry lookup AND the counter itself: both must be
      // thread-safe per the header contract.
      for (int i = 0; i < kIncs; ++i) reg.counter("pkb_test_total").inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("pkb_test_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIncs);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(Metrics, LabeledSeriesAreDistinctAndOrderInsensitive) {
  MetricsRegistry reg;
  reg.counter("c", {{"a", "1"}, {"b", "2"}}).inc();
  reg.counter("c", {{"b", "2"}, {"a", "1"}}).inc();  // same series, reordered
  reg.counter("c", {{"a", "1"}, {"b", "3"}}).inc();
  EXPECT_EQ(reg.counter("c", {{"a", "1"}, {"b", "2"}}).value(), 2u);
  EXPECT_EQ(reg.counter("c", {{"a", "1"}, {"b", "3"}}).value(), 1u);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(Metrics, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("pkb_x").inc();
  EXPECT_THROW(reg.gauge("pkb_x"), std::logic_error);
  EXPECT_THROW(reg.histogram("pkb_x"), std::logic_error);
}

TEST(Metrics, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {}, {1.0, 2.0, 5.0});
  // A sample lands in the first bucket with x <= bound: values exactly on a
  // bound belong to that bound's bucket, not the next one.
  h.observe(1.0);
  h.observe(1.5);
  h.observe(2.0);
  h.observe(2.5);
  h.observe(10.0);  // beyond the last bound -> +Inf bucket
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);  // 3 bounds + implicit +Inf
  EXPECT_EQ(snap.buckets[0], 1u);      // 1.0
  EXPECT_EQ(snap.buckets[1], 2u);      // 1.5, 2.0
  EXPECT_EQ(snap.buckets[2], 1u);      // 2.5
  EXPECT_EQ(snap.buckets[3], 1u);      // 10.0
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 17.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 10.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 3.4);
}

TEST(Metrics, HistogramMinMaxAvgMatchesSummaryExactly) {
  // The Table II parity property: a registry histogram reports the same
  // min/max/avg as util::Summary over the same samples (exact tracking, not
  // bucket approximation).
  const std::vector<double> samples = {0.0123, 0.94, 0.00007, 3.6, 0.25};
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");  // default latency buckets
  util::Summary summary;
  for (double s : samples) {
    h.observe(s);
    summary.add(s);
  }
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.min, summary.min());
  EXPECT_DOUBLE_EQ(snap.max, summary.max());
  EXPECT_DOUBLE_EQ(snap.mean(), summary.mean());
  EXPECT_EQ(snap.count, summary.count());
}

TEST(Metrics, HistogramBoundsMustIncrease) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("bad2", {}, {2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, ResetZeroesInPlaceAndPreservesReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h", {}, {1.0});
  c.inc(7);
  g.set(3.5);
  h.observe(0.5);
  reg.reset();
  // The references stay valid and usable after reset — the property the
  // benches rely on when resetting between arms.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(reg.series_count(), 3u);
  c.inc();
  h.observe(2.0);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(reg.counter("c").value(), 1u);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Metrics, PrometheusExportGolden) {
  MetricsRegistry reg;
  reg.counter("pkb_test_total", {{"arm", "a"}}).inc(3);
  reg.gauge("pkb_test_gauge").set(2.5);
  Histogram& h = reg.histogram("pkb_test_seconds", {}, {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  const std::string expected =
      "# TYPE pkb_test_gauge gauge\n"
      "pkb_test_gauge 2.5\n"
      "# TYPE pkb_test_seconds histogram\n"
      "pkb_test_seconds_bucket{le=\"0.1\"} 1\n"
      "pkb_test_seconds_bucket{le=\"1\"} 2\n"
      "pkb_test_seconds_bucket{le=\"+Inf\"} 2\n"
      "pkb_test_seconds_sum 0.55\n"
      "pkb_test_seconds_count 2\n"
      "# TYPE pkb_test_total counter\n"
      "pkb_test_total{arm=\"a\"} 3\n";
  EXPECT_EQ(reg.prometheus_text(), expected);
}

TEST(Metrics, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("c", {{"k", "a\"b\\c\nd"}}).inc();
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("c{k=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos)
      << text;
}

TEST(Metrics, JsonExportGolden) {
  MetricsRegistry reg;
  reg.counter("pkb_test_total", {{"arm", "a"}}).inc(3);
  Histogram& h = reg.histogram("pkb_test_seconds", {}, {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  const std::string expected =
      "{\"counters\":[{\"name\":\"pkb_test_total\",\"labels\":{\"arm\":\"a\"},"
      "\"value\":3}],"
      "\"gauges\":[],"
      "\"histograms\":[{\"name\":\"pkb_test_seconds\",\"labels\":{},"
      "\"count\":2,\"sum\":2,\"min\":0.5,\"max\":1.5,\"mean\":1,"
      "\"p50\":1,\"p90\":1.5,\"p99\":1.5,"
      "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":2},"
      "{\"le\":\"+Inf\",\"count\":2}]}]}";
  EXPECT_EQ(reg.json().dump(), expected);
}

// ---------------------------------------------------------------------------
// Span tracer.
// ---------------------------------------------------------------------------

TEST(Trace, SpansNestIntoATree) {
  Tracer tracer;
  {
    Span root(tracer, "root");
    root.set_attr("arm", "rag");
    root.set_attr("k", 8);
    { Span child(tracer, "first"); }
    {
      Span child(tracer, "second");
      child.set_attr("hits", std::uint64_t{4});
      { Span grand(tracer, "grand"); }
    }
  }
  ASSERT_EQ(tracer.trace_count(), 1u);
  const Trace trace = *tracer.latest();
  EXPECT_EQ(trace.id, 1u);
  EXPECT_EQ(trace.root.name, "root");
  ASSERT_EQ(trace.root.attrs.size(), 2u);
  EXPECT_EQ(trace.root.attrs[0], (std::pair<std::string, std::string>{"arm",
                                                                      "rag"}));
  EXPECT_EQ(trace.root.attrs[1].second, "8");
  ASSERT_EQ(trace.root.children.size(), 2u);
  EXPECT_EQ(trace.root.children[0].name, "first");
  EXPECT_TRUE(trace.root.children[0].children.empty());
  EXPECT_EQ(trace.root.children[1].name, "second");
  ASSERT_EQ(trace.root.children[1].children.size(), 1u);
  EXPECT_EQ(trace.root.children[1].children[0].name, "grand");
  // Durations are non-negative and children start no earlier than parents.
  EXPECT_GE(trace.root.dur_us, 0.0);
  EXPECT_GE(trace.root.children[1].start_us, trace.root.start_us);
}

TEST(Trace, RingEvictsOldestAtCapacity) {
  Tracer tracer(3);
  for (int i = 0; i < 5; ++i) {
    Span span(tracer, "s");
  }
  EXPECT_EQ(tracer.trace_count(), 3u);
  const std::vector<Trace> traces = tracer.traces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].id, 3u);  // 1 and 2 were evicted
  EXPECT_EQ(traces[2].id, 5u);
  EXPECT_EQ(tracer.latest()->id, 5u);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  {
    Span span(tracer, "ignored");
    span.set_attr("k", "v");  // must be a safe no-op
  }
  EXPECT_EQ(tracer.trace_count(), 0u);
  EXPECT_FALSE(tracer.latest().has_value());
}

TEST(Trace, ClearDropsRetainedTraces) {
  Tracer tracer;
  { Span span(tracer, "a"); }
  ASSERT_EQ(tracer.trace_count(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.trace_count(), 0u);
  { Span span(tracer, "b"); }
  EXPECT_EQ(tracer.trace_count(), 1u);
}

TEST(Trace, ChromeTraceJsonHasCompleteEvents) {
  Tracer tracer;
  {
    Span root(tracer, "outer");
    Span child(tracer, "inner");
    child.set_attr("n", 3);
  }
  const std::string json = tracer.chrome_trace_json();
  // Parseable and shaped like the Chrome trace-event format.
  const util::Json parsed = util::Json::parse(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"X\""), std::string::npos);
}

TEST(Trace, RenderTreeShowsHierarchyAndAttrs) {
  Tracer tracer;
  {
    Span root(tracer, "ask");
    root.set_attr("arm", "rag");
    { Span child(tracer, "retrieve"); }
    { Span child(tracer, "llm"); }
  }
  const std::string tree = render_tree(tracer.latest()->root);
  EXPECT_NE(tree.find("ask"), std::string::npos);
  EXPECT_NE(tree.find("arm=rag"), std::string::npos);
  EXPECT_NE(tree.find("├─ retrieve"), std::string::npos);
  EXPECT_NE(tree.find("└─ llm"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Log short-circuit (satellite fix): a disabled statement must never invoke
// operator<< on its arguments.
// ---------------------------------------------------------------------------

struct Probe {
  bool* formatted;
};
std::ostream& operator<<(std::ostream& os, const Probe& p) {
  *p.formatted = true;
  return os << "probe";
}

TEST(Log, DisabledStatementsSkipFormatting) {
  ASSERT_EQ(util::log_level(), util::LogLevel::Warn) << "unexpected default";
  bool formatted = false;
  PKB_LOG(Trace, "obs_test") << Probe{&formatted};
  EXPECT_FALSE(formatted) << "operator<< ran for a disabled level";
  EXPECT_FALSE(util::log_enabled(util::LogLevel::Trace));
  EXPECT_TRUE(util::log_enabled(util::LogLevel::Error));
}

TEST(Log, EnabledStatementsStillFormat) {
  util::set_log_level(util::LogLevel::Debug);
  bool formatted = false;
  PKB_LOG(Debug, "obs_test") << Probe{&formatted};
  EXPECT_TRUE(formatted);
  util::set_log_level(util::LogLevel::Off);
  formatted = false;
  PKB_LOG(Error, "obs_test") << Probe{&formatted};
  EXPECT_FALSE(formatted) << "Off must disable every level";
  util::set_log_level(util::LogLevel::Warn);  // restore the default
}

// ---------------------------------------------------------------------------
// Integration: one ask() on the RagRerank arm produces exactly the span tree
// documented in docs/OBSERVABILITY.md.
// ---------------------------------------------------------------------------

class ObsIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new rag::RagDatabase(
        rag::RagDatabase::build(corpus::generate_corpus()));
  }
  static rag::RagDatabase* db_;
};

rag::RagDatabase* ObsIntegrationTest::db_ = nullptr;

std::vector<std::string> child_names(const SpanData& span) {
  std::vector<std::string> names;
  names.reserve(span.children.size());
  for (const SpanData& child : span.children) names.push_back(child.name);
  return names;
}

bool has_attr(const SpanData& span, std::string_view key) {
  for (const auto& [k, v] : span.attrs) {
    if (k == key) return true;
  }
  return false;
}

TEST_F(ObsIntegrationTest, AskOnRagRerankEmitsDocumentedSpanTree) {
  const rag::AugmentedWorkflow workflow(*db_, rag::PipelineArm::RagRerank,
                                        llm::model_config("sim-gpt-4o"));
  global_tracer().clear();
  const std::uint64_t asks_before =
      global_metrics()
          .counter(kWorkflowRequestsTotal, {{"arm", "rag+rerank"}})
          .value();

  (void)workflow.ask("How do I choose a Krylov solver?");

  ASSERT_EQ(global_tracer().trace_count(), 1u)
      << "one ask() must finish exactly one trace";
  const Trace trace = *global_tracer().latest();

  // The exact hierarchy from docs/OBSERVABILITY.md (no history attached, so
  // no history_recall / history_record spans).
  EXPECT_EQ(trace.root.name, kSpanAsk);
  EXPECT_EQ(child_names(trace.root),
            (std::vector<std::string>{
                std::string(kSpanRetrieve), std::string(kSpanPromptBuild),
                std::string(kSpanLlm), std::string(kSpanPostprocess)}));
  const SpanData& retrieve = trace.root.children[0];
  EXPECT_EQ(child_names(retrieve),
            (std::vector<std::string>{
                std::string(kSpanEmbedQuery), std::string(kSpanVectorSearch),
                std::string(kSpanKeywordAugment), std::string(kSpanRerank)}));

  // Documented attributes are present on each span.
  EXPECT_TRUE(has_attr(trace.root, "arm"));
  EXPECT_TRUE(has_attr(trace.root, "model"));
  EXPECT_TRUE(has_attr(retrieve, "k"));
  EXPECT_TRUE(has_attr(retrieve, "kept"));
  EXPECT_TRUE(has_attr(retrieve.children[0], "embedder"));
  EXPECT_TRUE(has_attr(retrieve.children[1], "hits"));
  EXPECT_TRUE(has_attr(retrieve.children[3], "reranker"));
  EXPECT_TRUE(has_attr(trace.root.children[2], "sim_latency_s"));
  EXPECT_TRUE(has_attr(trace.root.children[3], "code_blocks"));

  // And the registry moved in step.
  EXPECT_EQ(global_metrics()
                .counter(kWorkflowRequestsTotal, {{"arm", "rag+rerank"}})
                .value(),
            asks_before + 1);
  EXPECT_GT(global_metrics()
                .histogram(kRetrieveRagSeconds)
                .snapshot()
                .count,
            0u);
}

TEST_F(ObsIntegrationTest, BaselineAskHasNoRetrieveSubtree) {
  const rag::AugmentedWorkflow workflow(*db_, rag::PipelineArm::Baseline,
                                        llm::model_config("sim-gpt-4o"));
  global_tracer().clear();
  (void)workflow.ask("What does KSPSolve do?");
  ASSERT_EQ(global_tracer().trace_count(), 1u);
  const Trace trace = *global_tracer().latest();
  EXPECT_EQ(trace.root.name, kSpanAsk);
  EXPECT_EQ(child_names(trace.root),
            (std::vector<std::string>{
                std::string(kSpanPromptBuild), std::string(kSpanLlm),
                std::string(kSpanPostprocess)}));
}

TEST_F(ObsIntegrationTest, StandaloneLlmCallIsItsOwnTraceRoot) {
  // SimLlm opens the llm span itself, so a direct complete() call (outside
  // any workflow) still yields a single-root trace — the documented
  // "standalone calls become single-root traces" behavior.
  const llm::SimLlm llm(llm::model_config("sim-gpt-4o"));
  global_tracer().clear();
  llm::LlmRequest request;
  request.question = "What is PETSc?";
  (void)llm.complete(request);
  ASSERT_EQ(global_tracer().trace_count(), 1u);
  const Trace trace = *global_tracer().latest();
  EXPECT_EQ(trace.root.name, kSpanLlm);
  EXPECT_TRUE(trace.root.children.empty());
  EXPECT_TRUE(has_attr(trace.root, "mode"));
}

}  // namespace
}  // namespace pkb::obs
