#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pkb::text {
namespace {

TEST(Tokenizer, LowercasesProse) {
  const auto toks = tokens_of("How Do I Solve");
  EXPECT_EQ(toks, (std::vector<std::string>{"how", "do", "i", "solve"}));
}

TEST(Tokenizer, KeepsApiSymbolsAsSingleTokens) {
  const auto tt = tokenize("Call KSPSetType before KSPSolve.");
  EXPECT_EQ(tt.symbols, (std::vector<std::string>{"KSPSetType", "KSPSolve"}));
  EXPECT_NE(std::find(tt.tokens.begin(), tt.tokens.end(), "kspsettype"),
            tt.tokens.end());
}

TEST(Tokenizer, KeepsRuntimeOptions) {
  const auto tt = tokenize("run with -ksp_monitor and -pc_type jacobi");
  EXPECT_NE(std::find(tt.symbols.begin(), tt.symbols.end(), "-ksp_monitor"),
            tt.symbols.end());
  EXPECT_NE(std::find(tt.symbols.begin(), tt.symbols.end(), "-pc_type"),
            tt.symbols.end());
  // plain words are not symbols
  EXPECT_EQ(std::find(tt.symbols.begin(), tt.symbols.end(), "jacobi"),
            tt.symbols.end());
}

TEST(Tokenizer, SymbolsDeduplicatedInFirstAppearanceOrder) {
  const auto tt = tokenize("KSPSolve then KSPGMRES then KSPSolve again");
  EXPECT_EQ(tt.symbols, (std::vector<std::string>{"KSPSolve", "KSPGMRES"}));
}

TEST(Tokenizer, StopwordRemovalOnlyWhenRequested) {
  TokenizerOptions opts;
  opts.drop_stopwords = true;
  const auto toks = tokens_of("what is the matrix", opts);
  EXPECT_EQ(toks, (std::vector<std::string>{"matrix"}));
  const auto all = tokens_of("what is the matrix");
  EXPECT_EQ(all.size(), 4u);
}

TEST(Tokenizer, MinTokenLengthFilter) {
  TokenizerOptions opts;
  opts.min_token_len = 3;
  const auto toks = tokens_of("a bb ccc dddd", opts);
  EXPECT_EQ(toks, (std::vector<std::string>{"ccc", "dddd"}));
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(tokens_of("").empty());
  EXPECT_TRUE(tokens_of("... !!! ???").empty());
}

TEST(Tokenizer, DoubleDashProseSeparatorNotAnOption) {
  const auto tt = tokenize("yes -- and no");
  EXPECT_TRUE(tt.symbols.empty());
}

TEST(LooksLikeSymbol, Positive) {
  EXPECT_TRUE(looks_like_symbol("KSPSolve"));
  EXPECT_TRUE(looks_like_symbol("KSPGMRES"));
  EXPECT_TRUE(looks_like_symbol("MatSetValues"));
  EXPECT_TRUE(looks_like_symbol("-ksp_type"));
  EXPECT_TRUE(looks_like_symbol("-info"));
  EXPECT_TRUE(looks_like_symbol("PetscCall"));
}

TEST(LooksLikeSymbol, Negative) {
  EXPECT_FALSE(looks_like_symbol("solver"));
  EXPECT_FALSE(looks_like_symbol("Solve"));     // no interior capital
  EXPECT_FALSE(looks_like_symbol("GPU"));       // short ALLCAPS
  EXPECT_FALSE(looks_like_symbol("a"));
  EXPECT_FALSE(looks_like_symbol("-x"));        // too short for an option
  EXPECT_FALSE(looks_like_symbol("matrix"));
}

TEST(SplitSentences, BasicSplit) {
  const auto sents = split_sentences("First one. Second one? Third!");
  ASSERT_EQ(sents.size(), 3u);
  EXPECT_EQ(sents[0], "First one.");
  EXPECT_EQ(sents[1], "Second one?");
  EXPECT_EQ(sents[2], "Third!");
}

TEST(SplitSentences, AbbreviationsDoNotSplit) {
  const auto sents =
      split_sentences("Use a solver, e.g. GMRES, for this. Then stop.");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[1], "Then stop.");
}

TEST(SplitSentences, NoTerminalPunctuation) {
  const auto sents = split_sentences("no punctuation here");
  ASSERT_EQ(sents.size(), 1u);
}

TEST(SplitSentences, PeriodInsideIdentifierDoesNotSplit) {
  const auto sents = split_sentences("See src/ksp/ksp.c for details. Done.");
  ASSERT_EQ(sents.size(), 2u);
}

TEST(ApproxLlmTokens, ScalesWithWords) {
  const std::size_t small = approx_llm_tokens("three word phrase");
  const std::size_t big =
      approx_llm_tokens("a considerably longer phrase with many more words");
  EXPECT_GT(big, small);
  EXPECT_GE(small, 3u);
}

TEST(ApproxLlmTokens, EmptyIsCheap) {
  EXPECT_LE(approx_llm_tokens(""), 1u);
}

}  // namespace
}  // namespace pkb::text
