#include <gtest/gtest.h>

#include <cmath>

#include "corpus/generator.h"
#include "embed/blend.h"
#include "embed/embedder.h"
#include "embed/hashing.h"
#include "embed/lsa.h"
#include "embed/tfidf.h"
#include "text/loader.h"

namespace pkb::embed {
namespace {

std::vector<text::Document> small_corpus() {
  return {
      {"a", "conjugate gradient method for symmetric positive definite "
            "matrices with short recurrences", {}},
      {"b", "generalized minimal residual GMRES method restarts for "
            "nonsymmetric matrices", {}},
      {"c", "least squares problems with rectangular matrices solved by "
            "LSQR bidiagonalization", {}},
      {"d", "matrix preallocation and assembly performance with "
            "MatSetValues and mallocs", {}},
      {"e", "multigrid preconditioning with smoothers and coarse grid "
            "solves", {}},
  };
}

TEST(VectorOps, DotNormCosine) {
  const Vector a = {1.0f, 0.0f, 2.0f};
  const Vector b = {0.0f, 3.0f, 4.0f};
  EXPECT_FLOAT_EQ(dot(a, b), 8.0f);
  EXPECT_FLOAT_EQ(norm(a), std::sqrt(5.0f));
  EXPECT_NEAR(cosine(a, b), 8.0f / (std::sqrt(5.0f) * 5.0f), 1e-6);
  EXPECT_THROW(dot(a, Vector{1.0f}), std::invalid_argument);
}

TEST(VectorOps, CosineOfZeroVectorIsZero) {
  EXPECT_FLOAT_EQ(cosine({0.0f, 0.0f}, {1.0f, 0.0f}), 0.0f);
}

TEST(VectorOps, NormalizeMakesUnitNorm) {
  Vector v = {3.0f, 4.0f};
  l2_normalize(v);
  EXPECT_NEAR(norm(v), 1.0f, 1e-6);
  Vector zero = {0.0f, 0.0f};
  l2_normalize(zero);  // must not divide by zero
  EXPECT_FLOAT_EQ(norm(zero), 0.0f);
}

class EmbedderParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EmbedderParamTest, OutputsAreUnitNorm) {
  auto embedder = make_embedder(GetParam());
  embedder->fit(small_corpus());
  for (const auto& doc : small_corpus()) {
    const Vector v = embedder->embed(doc.text);
    EXPECT_EQ(v.size(), embedder->dimension());
    EXPECT_NEAR(norm(v), 1.0f, 1e-4) << GetParam();
  }
}

TEST_P(EmbedderParamTest, Deterministic) {
  auto e1 = make_embedder(GetParam());
  auto e2 = make_embedder(GetParam());
  e1->fit(small_corpus());
  e2->fit(small_corpus());
  EXPECT_EQ(e1->embed("conjugate gradient"), e2->embed("conjugate gradient"));
}

TEST_P(EmbedderParamTest, SelfSimilarityIsMaximal) {
  auto embedder = make_embedder(GetParam());
  embedder->fit(small_corpus());
  const std::string text = small_corpus()[0].text;
  const float self = cosine(embedder->embed(text), embedder->embed(text));
  EXPECT_NEAR(self, 1.0f, 1e-4);
}

TEST_P(EmbedderParamTest, TopicallySimilarBeatsDissimilar) {
  auto embedder = make_embedder(GetParam());
  embedder->fit(small_corpus());
  const Vector query =
      embedder->embed("symmetric positive definite conjugate gradient");
  const Vector on_topic = embedder->embed(small_corpus()[0].text);
  const Vector off_topic = embedder->embed(small_corpus()[3].text);
  EXPECT_GT(cosine(query, on_topic), cosine(query, off_topic)) << GetParam();
}

TEST_P(EmbedderParamTest, BatchMatchesSingle) {
  auto embedder = make_embedder(GetParam());
  const auto docs = small_corpus();
  embedder->fit(docs);
  const auto batch = embedder->embed_batch(docs);
  ASSERT_EQ(batch.size(), docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(batch[i], embedder->embed(docs[i].text));
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EmbedderParamTest,
                         ::testing::Values("sim-tfidf", "sim-hash-512",
                                           "sim-lsa-16", "sim-charngram-512",
                                           "sim-blend-16-128-w25"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Vocabulary, FitCountsDocumentFrequencies) {
  Vocabulary vocab;
  vocab.fit(small_corpus());
  EXPECT_EQ(vocab.doc_count(), 5u);
  EXPECT_NE(vocab.id_of("matrices"), Vocabulary::npos);
  EXPECT_EQ(vocab.id_of("nonexistentterm"), Vocabulary::npos);
  // Rare terms have higher IDF than common ones.
  EXPECT_GT(vocab.idf_of("lsqr"), vocab.idf_of("matrices"));
  EXPECT_FLOAT_EQ(vocab.idf_of("nonexistentterm"), 0.0f);
}

TEST(Vocabulary, MinDfFiltersRareTerms) {
  Vocabulary strict;
  strict.fit(small_corpus(), /*min_df=*/2);
  EXPECT_EQ(strict.id_of("lsqr"), Vocabulary::npos);  // appears once
  EXPECT_NE(strict.id_of("matrices"), Vocabulary::npos);
}

TEST(Vocabulary, TfidfSparseVectorIsNormalized) {
  Vocabulary vocab;
  vocab.fit(small_corpus());
  const auto sparse = vocab.tfidf("conjugate gradient method");
  double norm_sq = 0.0;
  for (const auto& [id, w] : sparse) norm_sq += static_cast<double>(w) * w;
  EXPECT_NEAR(norm_sq, 1.0, 1e-5);
}

TEST(Tfidf, EmbedBeforeFitThrows) {
  TfidfEmbedder embedder;
  EXPECT_THROW((void)embedder.embed("text"), std::logic_error);
}

TEST(Tfidf, UnknownTermsEmbedToZero) {
  TfidfEmbedder embedder;
  embedder.fit(small_corpus());
  const Vector v = embedder.embed("zzz qqq www");
  EXPECT_FLOAT_EQ(norm(v), 0.0f);
}

TEST(Lsa, CapturesTopicalSimilarityWithoutSharedTerms) {
  // "SPD solver" and the CG document share topic terms via co-occurrence.
  LsaEmbedder lsa(4, 8);
  lsa.fit(small_corpus());
  EXPECT_EQ(lsa.dimension(), 4u);
  const float on = cosine(lsa.embed("symmetric positive definite"),
                          lsa.embed(small_corpus()[0].text));
  const float off = cosine(lsa.embed("symmetric positive definite"),
                           lsa.embed(small_corpus()[2].text));
  EXPECT_GT(on, off);
}

TEST(Lsa, InvalidParamsThrow) {
  EXPECT_THROW(LsaEmbedder(0), std::invalid_argument);
  EXPECT_THROW(LsaEmbedder(4, 0), std::invalid_argument);
}

TEST(Hashing, DimensionIsRespected) {
  HashEmbedder h(64);
  EXPECT_EQ(h.dimension(), 64u);
  h.fit({});
  EXPECT_EQ(h.embed("some text").size(), 64u);
  EXPECT_THROW(HashEmbedder(0), std::invalid_argument);
}

TEST(CharNgram, TypoRobustness) {
  CharNgramEmbedder e(512);
  e.fit({});
  // A one-character typo stays closer than a different symbol.
  const float typo = cosine(e.embed("KSPGMRES"), e.embed("KSPGMRS"));
  const float other = cosine(e.embed("KSPGMRES"), e.embed("PCJACOBI"));
  EXPECT_GT(typo, other);
  EXPECT_GT(typo, 0.5f);
}

TEST(Blend, CosineDecomposes) {
  BlendEmbedder blend(4, 64, 0.5);
  blend.fit(small_corpus());
  EXPECT_EQ(blend.dimension(), 4u + 64u);
  const Vector v = blend.embed(small_corpus()[1].text);
  EXPECT_NEAR(norm(v), 1.0f, 1e-4);
}

TEST(Blend, InvalidWeightThrows) {
  EXPECT_THROW(BlendEmbedder(4, 64, -0.1), std::invalid_argument);
  EXPECT_THROW(BlendEmbedder(4, 64, 1.5), std::invalid_argument);
}

TEST(Registry, KnownNamesConstruct) {
  for (const std::string& name : embedder_registry()) {
    EXPECT_NO_THROW((void)make_embedder(name)) << name;
  }
  EXPECT_NO_THROW((void)make_embedder("sim-lsa-20"));
  EXPECT_NO_THROW((void)make_embedder("sim-blend-32-256-w10"));
  EXPECT_THROW((void)make_embedder("nope"), std::invalid_argument);
  EXPECT_THROW((void)make_embedder("sim-blend-x-y-wz"), std::invalid_argument);
}

TEST(Registry, PaperAliasesResolve) {
  EXPECT_NO_THROW((void)make_embedder("sim-embed-3-large"));
  EXPECT_NO_THROW((void)make_embedder("sim-embed-3-small"));
  EXPECT_NO_THROW((void)make_embedder("sim-embed-ada"));
}

}  // namespace
}  // namespace pkb::embed
