#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "rerank/cross_score.h"
#include "rerank/flashranker.h"
#include "rerank/reranker.h"
#include "util/rng.h"

namespace pkb::rerank {
namespace {

std::vector<text::Document> corpus() {
  std::vector<text::Document> docs = {
      {"lsqr", "KSPLSQR solves least squares problems with rectangular "
               "matrices using bidiagonalization.", {{"title", "KSPLSQR"}}},
      {"cg", "KSPCG implements conjugate gradient for symmetric positive "
             "definite matrices.", {{"title", "KSPCG"}}},
      {"gmres", "KSPGMRES restarts every 30 iterations and handles "
                "nonsymmetric square matrices.", {{"title", "KSPGMRES"}}},
      {"monitor", "The -ksp_monitor option prints the residual norm at "
                  "every iteration.", {{"title", "-ksp_monitor"}}},
      {"info", "The -info option prints diagnostics including matrix "
               "preallocation success and malloc counts.",
       {{"title", "-info"}}},
      {"filler1", "Vectors support axpy operations and norms.", {}},
      {"filler2", "Preconditioners reduce the iteration count.", {}},
  };
  return docs;
}

std::vector<RerankCandidate> candidates(const std::vector<text::Document>& d) {
  std::vector<RerankCandidate> out;
  for (const auto& doc : d) out.push_back({&doc, 0.5f});
  return out;
}

class RerankerParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RerankerParamTest, PutsTheDecisiveDocFirst) {
  auto ranker = make_reranker(GetParam());
  const auto docs = corpus();
  ranker->fit(docs);
  const auto ranked = ranker->rerank(
      "Can I solve a rectangular least squares system?", candidates(docs), 4);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].doc->id, "lsqr") << GetParam();
}

TEST_P(RerankerParamTest, TruncatesToTopL) {
  auto ranker = make_reranker(GetParam());
  const auto docs = corpus();
  ranker->fit(docs);
  EXPECT_EQ(ranker->rerank("query about matrices", candidates(docs), 2).size(),
            2u);
  EXPECT_EQ(ranker->rerank("query", candidates(docs), 100).size(), docs.size());
  EXPECT_TRUE(ranker->rerank("query", {}, 4).empty());
}

TEST_P(RerankerParamTest, ScoresDescendAndTiesKeepOriginalOrder) {
  auto ranker = make_reranker(GetParam());
  const auto docs = corpus();
  ranker->fit(docs);
  const auto ranked =
      ranker->rerank("preallocation malloc diagnostics", candidates(docs),
                     docs.size());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    if (ranked[i - 1].score == ranked[i].score) {
      EXPECT_LT(ranked[i - 1].original_rank, ranked[i].original_rank);
    } else {
      EXPECT_GT(ranked[i - 1].score, ranked[i].score);
    }
  }
  EXPECT_EQ(ranked[0].doc->id, "info");
}

TEST_P(RerankerParamTest, PermutationInvariantScores) {
  // Candidate order must not change per-document scores (tied documents may
  // legitimately swap positions — ties break by arrival order).
  auto ranker = make_reranker(GetParam());
  const auto docs = corpus();
  ranker->fit(docs);
  auto cands = candidates(docs);
  const auto a = ranker->rerank("rectangular least squares", cands, docs.size());
  std::reverse(cands.begin(), cands.end());
  const auto b = ranker->rerank("rectangular least squares", cands, docs.size());
  ASSERT_EQ(a.size(), b.size());
  std::map<std::string, double> score_a;
  std::map<std::string, double> score_b;
  for (const auto& r : a) score_a[r.doc->id] = r.score;
  for (const auto& r : b) score_b[r.doc->id] = r.score;
  EXPECT_EQ(score_a, score_b);
  // The top document (a strict winner) is order-independent.
  EXPECT_EQ(a[0].doc->id, b[0].doc->id);
}

TEST_P(RerankerParamTest, Deterministic) {
  auto r1 = make_reranker(GetParam());
  auto r2 = make_reranker(GetParam());
  const auto docs = corpus();
  r1->fit(docs);
  r2->fit(docs);
  const auto a = r1->rerank("monitor residual", candidates(docs), 3);
  const auto b = r2->rerank("monitor residual", candidates(docs), 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc->id, b[i].doc->id);
  }
}

INSTANTIATE_TEST_SUITE_P(BothRerankers, RerankerParamTest,
                         ::testing::Values("sim-flashrank", "sim-nv-cross"),
                         [](const auto& info) {
                           return info.param == "sim-flashrank" ? "flashrank"
                                                                : "nvcross";
                         });

TEST(FlashRanker, SymbolMatchOutweighsProse) {
  FlashRanker ranker;
  const auto docs = corpus();
  ranker.fit(docs);
  // Query names the API symbol: the exact match must dominate.
  const auto ranked =
      ranker.rerank("what does KSPGMRES do", candidates(docs), 1);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].doc->id, "gmres");
}

TEST(FlashRanker, ScorePairIsNonNegativeAndZeroForNoOverlap) {
  FlashRanker ranker;
  const auto docs = corpus();
  ranker.fit(docs);
  EXPECT_DOUBLE_EQ(ranker.score_pair("zzz qqq", docs[5]), 0.0);
  EXPECT_GT(ranker.score_pair("least squares", docs[0]), 0.0);
}

TEST(CrossScore, ProximityRewardsClusteredMatches) {
  CrossScoreReranker ranker;
  text::Document clustered{
      "c", "the rectangular least squares solver converges quickly", {}};
  text::Document scattered{
      "s", "rectangular grids are common; unrelated text follows here and "
           "goes on and on for a very long while about meshes and output "
           "and diagnostics; eventually least squares appears far away; "
           "and after yet more filler text the word solver shows up",
      {}};
  ranker.fit({clustered, scattered});
  const double c = ranker.score_pair("rectangular least squares solver",
                                     clustered);
  const double s = ranker.score_pair("rectangular least squares solver",
                                     scattered);
  EXPECT_GT(c, s);
}

TEST(CrossScore, SoftMatchingHandlesMorphology) {
  CrossScoreReranker ranker;
  text::Document doc{"d", "restarting the iteration bounds memory usage", {}};
  ranker.fit({doc});
  // "restart" ~ "restarting" via trigram soft match.
  EXPECT_GT(ranker.score_pair("restart memory", doc), 0.3);
}

TEST(Registry, NamesConstructAndUnknownThrows) {
  for (const std::string& name : reranker_registry()) {
    EXPECT_NO_THROW((void)make_reranker(name));
  }
  EXPECT_THROW((void)make_reranker("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace pkb::rerank
