// Sharded scatter–gather retrieval tests: partition shapes, the
// bit-identical-merge contract against the monolithic scan, partition
// tolerance (killed shards, per-shard breakers, fault-plan-driven loss),
// generational wiring (KnowledgeBase opts.shards, snapshot persistence,
// pinned snapshots across publishes), and the serve layer's partial-answer
// degradation. Suite names (ShardRouter*, ShardEquivalence*, ShardChaos*,
// ShardKnowledgeBase*, ShardServe*) are part of the scripts/run_tsan.sh
// filter.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ingest/ingestor.h"
#include "llm/model_config.h"
#include "rag/knowledge_base.h"
#include "rag/retriever.h"
#include "rag/workflow.h"
#include "resilience/fault_plan.h"
#include "resilience/resilience.h"
#include "serve/server.h"
#include "util/rng.h"
#include "vectordb/shard_router.h"
#include "vectordb/vector_store.h"

namespace {

using namespace pkb;
namespace res = pkb::resilience;
using embed::Vector;
using vectordb::MetadataFilter;
using vectordb::Scatter;
using vectordb::ScatterOptions;
using vectordb::SearchResult;
using vectordb::ShardRouter;
using vectordb::ShardRouterOptions;
using vectordb::VectorStore;

VectorStore random_store(std::size_t n, std::size_t dim, std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  VectorStore store;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    text::Document doc;
    doc.id = "doc-" + std::to_string(i);
    doc.metadata["parity"] = (i % 2 == 0) ? "even" : "odd";
    store.add(std::move(doc), std::move(v));
  }
  return store;
}

std::vector<Vector> random_queries(std::size_t n, std::size_t dim,
                                   std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  std::vector<Vector> queries;
  for (std::size_t q = 0; q < n; ++q) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    queries.push_back(std::move(v));
  }
  return queries;
}

// Bit-identical contract: same global indices, same float scores (no
// tolerance — the shard scan normalizes and dots exactly as the monolithic
// one), same document ids, same order.
void expect_hits_equal(const std::vector<SearchResult>& mono,
                       const std::vector<SearchResult>& sharded,
                       const std::string& what) {
  ASSERT_EQ(mono.size(), sharded.size()) << what;
  for (std::size_t i = 0; i < mono.size(); ++i) {
    EXPECT_EQ(mono[i].index, sharded[i].index) << what << " hit " << i;
    EXPECT_EQ(mono[i].score, sharded[i].score) << what << " hit " << i;
    ASSERT_NE(sharded[i].doc, nullptr) << what << " hit " << i;
    EXPECT_EQ(mono[i].doc->id, sharded[i].doc->id) << what << " hit " << i;
  }
}

// The exact top-k over the documents outside [dead_begin, dead_end): what a
// scatter missing that shard must return.
std::vector<SearchResult> survivors_top_k(const VectorStore& store,
                                          const Vector& query, std::size_t k,
                                          std::size_t dead_begin,
                                          std::size_t dead_end) {
  std::vector<SearchResult> all = store.similarity_search(query, store.size());
  std::vector<SearchResult> kept;
  for (const SearchResult& hit : all) {
    if (hit.index < dead_begin || hit.index >= dead_end) kept.push_back(hit);
  }
  if (kept.size() > k) kept.resize(k);
  return kept;
}

// --- ShardRouter: partition shapes and generational sharing ---------------

TEST(ShardRouter, PartitionIsContiguousAndBalanced) {
  const VectorStore store = random_store(10, 6, 1);
  const auto router = ShardRouter::partition(store, 4);
  ASSERT_EQ(router->shard_count(), 4u);
  EXPECT_EQ(router->size(), 10u);
  EXPECT_EQ(router->dimension(), 6u);
  // 10 over 4 -> sizes 3,3,2,2 at offsets 0,3,6,8.
  const std::vector<std::size_t> sizes = {3, 3, 2, 2};
  const std::vector<std::size_t> offsets = {0, 3, 6, 8};
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(router->shard(s).size(), sizes[s]) << "shard " << s;
    EXPECT_EQ(router->shard_offset(s), offsets[s]) << "shard " << s;
    for (std::size_t j = 0; j < router->shard(s).size(); ++j) {
      // Slices are contiguous: local j is global offset + j.
      EXPECT_EQ(router->shard(s).doc(j).id,
                "doc-" + std::to_string(offsets[s] + j));
    }
  }
}

TEST(ShardRouter, PartitionRejectsZeroShards) {
  const VectorStore store = random_store(4, 4, 2);
  EXPECT_THROW((void)ShardRouter::partition(store, 0), std::invalid_argument);
}

TEST(ShardRouter, UnderfullPartitionKeepsDimensionAndAnswers) {
  const VectorStore store = random_store(3, 8, 3);
  const auto router = ShardRouter::partition(store, 5);
  ASSERT_EQ(router->shard_count(), 5u);
  EXPECT_EQ(router->size(), 3u);
  // The tail shards are empty but keep the dimension (the preset-dim
  // VectorStore constructor), so dimension validation stays uniform.
  EXPECT_EQ(router->shard(3).size(), 0u);
  EXPECT_EQ(router->shard(3).dimension(), 8u);
  const Vector q = random_queries(1, 8, 4)[0];
  const Scatter sc = router->search(q, 3);
  EXPECT_FALSE(sc.partial());
  expect_hits_equal(store.similarity_search(q, 3), sc.hits, "underfull");
}

TEST(ShardRouter, QueryDimensionMismatchThrows) {
  const VectorStore store = random_store(6, 8, 5);
  const auto router = ShardRouter::partition(store, 2);
  EXPECT_THROW((void)router->search(Vector(4, 1.0f), 2),
               std::invalid_argument);
}

TEST(ShardRouter, WithShardReplacedSharesUntouchedShardObjects) {
  const VectorStore store = random_store(12, 6, 6);
  const auto r1 = ShardRouter::partition(store, 3);
  VectorStore replacement = random_store(6, 6, 7);  // different size is fine
  const auto r2 = r1->with_shard_replaced(1, std::move(replacement));

  // Untouched shards are the same objects (a rolling swap allocates only
  // the shard actually changing); the replaced one is new.
  EXPECT_EQ(&r1->shard(0), &r2->shard(0));
  EXPECT_EQ(&r1->shard(2), &r2->shard(2));
  EXPECT_NE(&r1->shard(1), &r2->shard(1));

  // Offsets are recomputed for the new shard sizes.
  EXPECT_EQ(r2->size(), 4u + 6u + 4u);
  EXPECT_EQ(r2->shard_offset(1), 4u);
  EXPECT_EQ(r2->shard_offset(2), 10u);
  // The source router is untouched.
  EXPECT_EQ(r1->size(), 12u);
  EXPECT_EQ(r1->shard_offset(2), 8u);

  // Chaos switches travel with the shared shard objects: killing a shared
  // shard in one generation kills it in the other; the replaced shard's
  // flag is its own.
  r2->kill_shard(2);
  EXPECT_TRUE(r1->shard_dead(2));
  r2->revive_shard(2);
  EXPECT_FALSE(r1->shard_dead(2));
  r2->kill_shard(1);
  EXPECT_FALSE(r1->shard_dead(1));
  r2->revive_shard(1);
}

TEST(ShardRouter, WithShardReplacedValidatesArguments) {
  const VectorStore store = random_store(8, 6, 8);
  const auto router = ShardRouter::partition(store, 2);
  EXPECT_THROW((void)router->with_shard_replaced(2, random_store(2, 6, 9)),
               std::invalid_argument);
  EXPECT_THROW((void)router->with_shard_replaced(0, random_store(2, 4, 9)),
               std::invalid_argument);
}

// --- ShardEquivalence: bit-identical to the monolithic scan ---------------

TEST(ShardEquivalence, SingleQueryMatchesMonolithicAcrossShardCounts) {
  const VectorStore store = random_store(50, 12, 10);
  const std::vector<Vector> queries = random_queries(5, 12, 11);
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    const auto router = ShardRouter::partition(store, shards);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const Scatter sc = router->search(queries[q], 8);
      EXPECT_FALSE(sc.partial());
      EXPECT_EQ(sc.shards_total, shards);
      expect_hits_equal(store.similarity_search(queries[q], 8), sc.hits,
                        "shards=" + std::to_string(shards) + " q" +
                            std::to_string(q));
    }
    // A stored vector as the query: exercises exact-1.0 scores and the
    // index tie-break.
    const Scatter self = router->search(store.vec(17), 6);
    expect_hits_equal(store.similarity_search(store.vec(17), 6), self.hits,
                      "shards=" + std::to_string(shards) + " self");
  }
}

TEST(ShardEquivalence, BatchMatchesMonolithicAndSinglePath) {
  const VectorStore store = random_store(40, 10, 12);
  const std::vector<Vector> queries = random_queries(6, 10, 13);
  const auto mono = store.similarity_search_batch(queries, 5);
  for (const std::size_t shards : {2u, 4u, 7u}) {
    const auto router = ShardRouter::partition(store, shards);
    const std::vector<Scatter> scatters = router->search_batch(queries, 5);
    ASSERT_EQ(scatters.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      EXPECT_FALSE(scatters[q].partial());
      expect_hits_equal(mono[q], scatters[q].hits,
                        "batch shards=" + std::to_string(shards) + " q" +
                            std::to_string(q));
      // The batched scatter is identical to the single-query scatter.
      expect_hits_equal(router->search(queries[q], 5).hits, scatters[q].hits,
                        "batch-vs-single shards=" + std::to_string(shards) +
                            " q" + std::to_string(q));
    }
  }
}

TEST(ShardEquivalence, MetadataFilterAppliesIdenticallyPerShard) {
  const VectorStore store = random_store(30, 8, 14);
  const MetadataFilter filter = [](const text::Metadata& meta) {
    auto it = meta.find("parity");
    return it != meta.end() && it->second == "even";
  };
  const Vector q = random_queries(1, 8, 15)[0];
  const auto mono = store.similarity_search(q, 10, &filter);
  ASSERT_FALSE(mono.empty());
  for (const std::size_t shards : {2u, 4u}) {
    const auto router = ShardRouter::partition(store, shards);
    const Scatter sc = router->search(q, 10, &filter);
    expect_hits_equal(mono, sc.hits,
                      "filter shards=" + std::to_string(shards));
    for (const SearchResult& hit : sc.hits) {
      EXPECT_EQ(hit.doc->meta("parity"), "even");
    }
  }
}

TEST(ShardEquivalence, KLargerThanCorpusReturnsEverythingInOrder) {
  const VectorStore store = random_store(15, 6, 16);
  const auto router = ShardRouter::partition(store, 4);
  const Vector q = random_queries(1, 6, 17)[0];
  const Scatter sc = router->search(q, 100);
  expect_hits_equal(store.similarity_search(q, 100), sc.hits, "k>n");
  EXPECT_EQ(sc.hits.size(), 15u);
  EXPECT_TRUE(router->search(q, 0).hits.empty());
}

TEST(ShardEquivalence, FaultOrdinalAccountingMatchesAcrossPaths) {
  // With a zero-rate plan attached, the scatter still draws one ordinal per
  // query per shard attempt — so a batch of N and N single scatters consume
  // identical ordinal streams (rates stay batch-size independent).
  const VectorStore store = random_store(20, 6, 18);
  const auto router = ShardRouter::partition(store, 4);
  const std::vector<Vector> queries = random_queries(3, 6, 19);

  res::FaultPlan batch_plan;
  ScatterOptions batch_opts;
  batch_opts.plan = &batch_plan;
  (void)router->search_batch(queries, 4, nullptr, batch_opts);

  res::FaultPlan single_plan;
  ScatterOptions single_opts;
  single_opts.plan = &single_plan;
  for (const Vector& q : queries) {
    (void)router->search(q, 4, nullptr, single_opts);
  }

  const auto batch_counts = batch_plan.counts(res::Stage::VectorSearch);
  const auto single_counts = single_plan.counts(res::Stage::VectorSearch);
  EXPECT_EQ(batch_counts.calls, 4u * queries.size());
  EXPECT_EQ(batch_counts.calls, single_counts.calls);
  EXPECT_EQ(batch_counts.faults(), 0u);
  EXPECT_EQ(single_counts.faults(), 0u);
}

// --- ShardChaos: partition tolerance --------------------------------------

TEST(ShardChaos, KilledShardDegradesToExactSurvivorTopK) {
  const VectorStore store = random_store(40, 8, 20);
  const auto router = ShardRouter::partition(store, 4);
  const Vector q = random_queries(1, 8, 21)[0];

  router->kill_shard(2);
  const Scatter sc = router->search(q, 6);
  EXPECT_TRUE(sc.partial());
  EXPECT_EQ(sc.shards_failed, 1u);
  EXPECT_EQ(sc.shards_total, 4u);
  const std::size_t dead_begin = router->shard_offset(2);
  const std::size_t dead_end = dead_begin + router->shard(2).size();
  expect_hits_equal(survivors_top_k(store, q, 6, dead_begin, dead_end),
                    sc.hits, "one dead shard");

  router->revive_shard(2);
  const Scatter healed = router->search(q, 6);
  EXPECT_FALSE(healed.partial());
  expect_hits_equal(store.similarity_search(q, 6), healed.hits, "revived");
}

TEST(ShardChaos, AllShardsDeadReturnsEmptyTaggedScatterWithoutThrowing) {
  const VectorStore store = random_store(12, 6, 22);
  const auto router = ShardRouter::partition(store, 3);
  for (std::size_t s = 0; s < 3; ++s) router->kill_shard(s);
  const Scatter sc = router->search(random_queries(1, 6, 23)[0], 4);
  EXPECT_TRUE(sc.hits.empty());
  EXPECT_EQ(sc.shards_failed, 3u);
  EXPECT_EQ(sc.shards_total, 3u);
}

TEST(ShardChaos, SustainedShardDeathTripsBreakerThenRecovers) {
  double now = 0.0;
  ShardRouterOptions ropts;
  ropts.breaker.window = 4;
  ropts.breaker.min_samples = 2;
  ropts.breaker.failure_threshold = 0.5;
  ropts.breaker.open_seconds = 10.0;
  ropts.breaker.half_open_probes = 1;
  ropts.breaker_clock = [&now] { return now; };

  const VectorStore store = random_store(20, 6, 24);
  const auto router = ShardRouter::partition(store, 2, ropts);
  const Vector q = random_queries(1, 6, 25)[0];

  // A dead shard fails every hedged attempt (2 failures per query at the
  // default hedges=1), so one query trips the 2-sample breaker open.
  router->kill_shard(1);
  EXPECT_TRUE(router->search(q, 4).partial());
  EXPECT_EQ(router->breaker_state(1), res::CircuitBreaker::State::Open);

  // While open, the shard is short-circuited: still partial, even revived,
  // until the cooldown elapses.
  router->revive_shard(1);
  EXPECT_TRUE(router->search(q, 4).partial());
  EXPECT_EQ(router->breaker_state(1), res::CircuitBreaker::State::Open);

  // Cooldown elapsed: the next scan is the half-open probe; it succeeds
  // against the revived shard and closes the breaker — full answers again.
  now = 20.0;
  const Scatter healed = router->search(q, 4);
  EXPECT_FALSE(healed.partial());
  EXPECT_EQ(router->breaker_state(1), res::CircuitBreaker::State::Closed);
  expect_hits_equal(store.similarity_search(q, 4), healed.hits,
                    "post-breaker recovery");
}

TEST(ShardChaos, FaultRateOneLosesEveryShardWithFullHedging) {
  const VectorStore store = random_store(16, 6, 26);
  const auto router = ShardRouter::partition(store, 4);
  res::FaultPlanOptions fopts;
  fopts.vector_search.transient_rate = 1.0;
  res::FaultPlan plan(fopts);
  ScatterOptions sopts;
  sopts.plan = &plan;
  sopts.hedges = 1;
  const Scatter sc = router->search(random_queries(1, 6, 27)[0], 4, nullptr,
                                    sopts);
  EXPECT_TRUE(sc.hits.empty());
  EXPECT_EQ(sc.shards_failed, 4u);
  // Every shard burned its initial attempt plus one hedge.
  EXPECT_EQ(plan.counts(res::Stage::VectorSearch).calls, 4u * 2u);
}

TEST(ShardChaos, HedgeRecoversAScriptedTransient) {
  const VectorStore store = random_store(24, 8, 28);
  const auto router = ShardRouter::partition(store, 3);
  res::FaultPlan plan;
  plan.script(res::Stage::VectorSearch, {res::FaultKind::Transient});
  ScatterOptions sopts;
  sopts.plan = &plan;
  sopts.hedges = 1;
  const Vector q = random_queries(1, 8, 29)[0];
  // Whichever shard draws the scripted transient hedges once and succeeds:
  // the answer is full and bit-identical.
  const Scatter sc = router->search(q, 5, nullptr, sopts);
  EXPECT_FALSE(sc.partial());
  expect_hits_equal(store.similarity_search(q, 5), sc.hits, "hedged");
  EXPECT_EQ(plan.counts(res::Stage::VectorSearch).transient, 1u);
}

TEST(ShardChaos, TransientsPastHedgesLoseExactlyThoseShards) {
  const VectorStore store = random_store(24, 8, 30);
  const auto router = ShardRouter::partition(store, 4);
  res::FaultPlan plan;
  plan.script(res::Stage::VectorSearch,
              {res::FaultKind::Transient, res::FaultKind::Transient});
  ScatterOptions sopts;
  sopts.plan = &plan;
  sopts.hedges = 0;  // no hedging: a faulted scan loses its shard
  const Vector q = random_queries(1, 8, 31)[0];
  const Scatter sc = router->search(q, 20, nullptr, sopts);
  // Exactly two shards (whichever drew the scripted ordinals) are lost;
  // every surviving hit is a genuine monolithic hit.
  EXPECT_EQ(sc.shards_failed, 2u);
  const auto mono = store.similarity_search(q, store.size());
  for (const SearchResult& hit : sc.hits) {
    bool found = false;
    for (const SearchResult& m : mono) {
      if (m.index == hit.index) {
        EXPECT_EQ(m.score, hit.score);
        EXPECT_EQ(m.doc->id, hit.doc->id);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "hit index " << hit.index;
  }
}

// --- ShardKnowledgeBase: generational wiring ------------------------------

text::VirtualDir shard_corpus() {
  text::VirtualDir tree;
  const std::vector<std::string> topics = {
      "Krylov subspace solvers and preconditioners",
      "multigrid coarsening and smoothers",
      "Newton line search and trust region methods",
      "sparse matrix assembly and preallocation",
      "time stepping with adaptive error control",
      "GPU offload of vector kernels"};
  for (std::size_t i = 0; i < topics.size(); ++i) {
    std::string body = "# Guide " + std::to_string(i) + "\n\n";
    for (int p = 0; p < 4; ++p) {
      body += "Paragraph " + std::to_string(p) + " explains " + topics[i] +
              " with enough detail about convergence, tolerances, and "
              "diagnostics that the splitter keeps it as its own chunk. ";
      body += "\n\n";
    }
    tree.push_back({"guide/g" + std::to_string(i) + ".md", body});
  }
  return tree;
}

const std::string kShardQuestion =
    "How do Krylov solvers interact with preconditioners?";

void expect_same_retrieval(const rag::RetrievalResult& a,
                           const rag::RetrievalResult& b,
                           const std::string& what) {
  ASSERT_EQ(a.contexts.size(), b.contexts.size()) << what;
  for (std::size_t i = 0; i < a.contexts.size(); ++i) {
    EXPECT_EQ(a.contexts[i].doc->id, b.contexts[i].doc->id)
        << what << " context " << i;
    EXPECT_EQ(a.contexts[i].score, b.contexts[i].score)
        << what << " context " << i;
  }
}

TEST(ShardKnowledgeBase, ShardedBuildServesIdenticalRetrieval) {
  const auto corpus = shard_corpus();
  const auto mono_kb = rag::KnowledgeBase::build(corpus);
  rag::KnowledgeBaseOptions opts;
  opts.shards = 3;
  const auto sharded_kb = rag::KnowledgeBase::build(corpus, opts);

  EXPECT_EQ(mono_kb.snapshot()->shards, nullptr);
  ASSERT_NE(sharded_kb.snapshot()->shards, nullptr);
  EXPECT_EQ(sharded_kb.snapshot()->shards->shard_count(), 3u);
  EXPECT_EQ(sharded_kb.snapshot()->shards->size(),
            sharded_kb.snapshot()->store.size());

  const rag::Retriever mono(mono_kb);
  const rag::Retriever sharded(sharded_kb);
  const rag::RetrievalResult a = mono.retrieve(kShardQuestion);
  const rag::RetrievalResult b = sharded.retrieve(kShardQuestion);
  ASSERT_FALSE(b.contexts.empty());
  EXPECT_EQ(b.shards_total, 3u);
  EXPECT_FALSE(b.partial());
  expect_same_retrieval(a, b, "sharded build");
}

TEST(ShardKnowledgeBase, SnapshotRoundTripCarriesShardsAndReattaches) {
  rag::KnowledgeBaseOptions opts;
  opts.shards = 3;
  const auto kb = rag::KnowledgeBase::build(shard_corpus(), opts);
  const rag::SnapshotPtr orig = kb.snapshot();
  const std::string path =
      (std::filesystem::temp_directory_path() / "pkb_shard_snapshot.bin")
          .string();
  orig->save(path);
  const rag::SnapshotPtr loaded = rag::Snapshot::load(path);
  std::filesystem::remove(path);

  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->opts.shards, 3u);
  ASSERT_NE(loaded->shards, nullptr);
  EXPECT_EQ(loaded->shards->shard_count(), 3u);
  EXPECT_EQ(loaded->shards->size(), loaded->store.size());

  const rag::KnowledgeBase reloaded(loaded);
  const rag::Retriever a(kb);
  const rag::Retriever b(reloaded);
  expect_same_retrieval(a.retrieve(kShardQuestion),
                        b.retrieve(kShardQuestion), "reloaded");
}

TEST(ShardKnowledgeBase, MonolithicSnapshotRoundTripStaysMonolithic) {
  const auto kb = rag::KnowledgeBase::build(shard_corpus());
  const std::string path =
      (std::filesystem::temp_directory_path() / "pkb_mono_snapshot.bin")
          .string();
  kb.snapshot()->save(path);
  const rag::SnapshotPtr loaded = rag::Snapshot::load(path);
  std::filesystem::remove(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->opts.shards, 0u);
  EXPECT_EQ(loaded->shards, nullptr);
}

TEST(ShardKnowledgeBase, PinnedSnapshotKeepsItsShardsAcrossPublishes) {
  rag::KnowledgeBaseOptions opts;
  opts.shards = 2;
  auto kb = rag::KnowledgeBase::build(shard_corpus(), opts);
  const rag::SnapshotPtr pinned = kb.snapshot();
  ASSERT_NE(pinned->shards, nullptr);
  const std::size_t pinned_size = pinned->shards->size();

  const rag::Retriever retriever(kb);
  const rag::RetrievalResult before =
      retriever.retrieve_on(pinned, kShardQuestion);

  // Live ingestion publishes a new generation with its own (larger) router.
  ingest::Ingestor ingestor(kb);
  const rag::SnapshotPtr next = ingestor.ingest_files(
      {{"new/marker.md",
        "# Marker\n\nSHARDMARKER paragraph long enough to be retained as a "
        "chunk of its own by the recursive splitter, with extra words about "
        "Krylov subspace convergence for good measure.\n"}});
  ASSERT_NE(next, nullptr);
  ASSERT_NE(next->shards, nullptr);
  EXPECT_GT(next->shards->size(), pinned_size);

  // The pinned snapshot pins every shard of its generation: same router
  // object, same answers — never a mixed generation.
  EXPECT_EQ(pinned->shards->size(), pinned_size);
  const rag::RetrievalResult after =
      retriever.retrieve_on(pinned, kShardQuestion);
  expect_same_retrieval(before, after, "pinned across publish");
}

// --- ShardServe: the serving layer over a sharded KB ----------------------

class ShardServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rag::KnowledgeBaseOptions opts;
    opts.shards = 2;
    kb_ = new rag::KnowledgeBase(
        rag::KnowledgeBase::build(shard_corpus(), opts));
    workflow_ = new rag::AugmentedWorkflow(*kb_, rag::PipelineArm::RagRerank,
                                           llm::model_config("sim-gpt-4o"));
  }
  static rag::KnowledgeBase* kb_;
  static rag::AugmentedWorkflow* workflow_;
};

rag::KnowledgeBase* ShardServeTest::kb_ = nullptr;
rag::AugmentedWorkflow* ShardServeTest::workflow_ = nullptr;

TEST_F(ShardServeTest, KilledShardStillServesTaggedPartialAnswers) {
  serve::ServerOptions opts;
  opts.workers = 2;
  serve::Server server(*workflow_, opts);

  const rag::WorkflowOutcome full = server.ask(kShardQuestion);
  EXPECT_FALSE(full.retrieval.partial());
  EXPECT_EQ(server.stats().partial, 0u);

  const auto router = kb_->snapshot()->shards;
  ASSERT_NE(router, nullptr);
  router->kill_shard(1);
  const rag::WorkflowOutcome partial =
      server.ask("What does multigrid coarsening change about smoothers?");
  router->revive_shard(1);

  // The answer is served — degraded in coverage, not failed.
  EXPECT_FALSE(partial.response.text.empty());
  EXPECT_TRUE(partial.retrieval.partial());
  EXPECT_EQ(partial.retrieval.shards_failed, 1u);
  EXPECT_EQ(partial.retrieval.shards_total, 2u);
  EXPECT_GE(server.stats().partial, 1u);
}

TEST_F(ShardServeTest, AllShardsDeadDegradesToParametricAnswer) {
  res::Resilience engine;
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.resilience = &engine;
  serve::Server server(*workflow_, opts);

  const auto router = kb_->snapshot()->shards;
  ASSERT_NE(router, nullptr);
  router->kill_shard(0);
  router->kill_shard(1);
  const rag::WorkflowOutcome out =
      server.ask("Why does Newton line search stall on bad Jacobians?");
  router->revive_shard(0);
  router->revive_shard(1);

  // Total partition loss walks the existing degradation ladder instead of
  // failing the request: a parametric (no-retrieval) answer comes back.
  EXPECT_EQ(out.degradation, res::DegradationLevel::NoRetrieval);
  EXPECT_TRUE(out.retrieval.contexts.empty());
  EXPECT_FALSE(out.response.text.empty());
  EXPECT_GE(server.stats().degraded, 1u);
}

}  // namespace
