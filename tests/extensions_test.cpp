// Tests for the future-work extensions: the synthetic mailing-list archive
// and shared-history recall (the Fig 3 dotted arrow).
#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/mailing_list.h"
#include "rag/history_retriever.h"
#include "rag/workflow.h"
#include "util/strings.h"

namespace pkb {
namespace {

TEST(MailingListArchive, GeneratesRequestedThreadCount) {
  corpus::ArchiveOptions opts;
  opts.threads = 12;
  const text::VirtualDir tree = corpus::generate_mailing_list_archive(opts);
  ASSERT_EQ(tree.size(), 12u);
  for (const auto& file : tree) {
    EXPECT_TRUE(file.path.starts_with("archives/petsc-users/thread-"));
    EXPECT_NE(file.content.find("[petsc-users]"), std::string::npos);
    EXPECT_NE(file.content.find("## From:"), std::string::npos);
  }
}

TEST(MailingListArchive, DeterministicPerSeedAndDistinctAcrossSeeds) {
  corpus::ArchiveOptions a;
  a.threads = 8;
  a.seed = 1;
  corpus::ArchiveOptions b = a;
  const auto t1 = corpus::generate_mailing_list_archive(a);
  const auto t2 = corpus::generate_mailing_list_archive(b);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].content, t2[i].content);
  }
  corpus::ArchiveOptions c = a;
  c.seed = 2;
  const auto t3 = corpus::generate_mailing_list_archive(c);
  bool any_diff = false;
  for (std::size_t i = 0; i < t1.size(); ++i) {
    if (t1[i].content != t3[i].content) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MailingListArchive, ThreadsAreGroundedInSpecFacts) {
  // Every thread names a real spec and carries its summary text (a
  // developer answered with real facts, not noise).
  corpus::ArchiveOptions opts;
  opts.threads = 20;
  for (const auto& file : corpus::generate_mailing_list_archive(opts)) {
    bool grounded = false;
    for (const corpus::ApiSpec& spec : corpus::api_table()) {
      if (file.content.find(spec.name) != std::string::npos &&
          file.content.find(spec.summary) != std::string::npos) {
        grounded = true;
        break;
      }
    }
    EXPECT_TRUE(grounded) << file.path;
  }
}

TEST(MailingListArchive, CorpusOptionIncludesIt) {
  corpus::CorpusOptions opts;
  opts.include_mailing_list_archive = true;
  opts.archive_threads = 10;
  std::size_t archive_files = 0;
  for (const auto& file : corpus::generate_corpus(opts)) {
    if (file.path.starts_with("archives/")) ++archive_files;
  }
  EXPECT_EQ(archive_files, 10u);
  // Default stays archive-free (the paper's evaluated configuration).
  for (const auto& file : corpus::generate_corpus()) {
    EXPECT_FALSE(file.path.starts_with("archives/")) << file.path;
  }
}

// --- shared-history recall -------------------------------------------------

history::InteractionRecord vetted_record(const std::string& q,
                                         const std::string& a,
                                         const std::string& model) {
  history::InteractionRecord r;
  r.question = q;
  r.response = a;
  r.model = model;
  r.pipeline = model.empty() ? "human" : "rag+rerank";
  return r;
}

TEST(HistoryRetriever, IndexesOnlyVettedRecords) {
  history::HistoryStore store;
  const auto good = store.add(vetted_record(
      "How do I frobnicate?", "Use the frobnicator.", "sim-gpt-4o"));
  const auto bad = store.add(vetted_record(
      "How do I defrobnicate?", "No idea.", "sim-gpt-4o"));
  const auto human = store.add(vetted_record(
      "What about refrobnication?", "Ask Barry.", ""));  // human, unscored
  store.record_score(good, {"alice", 4, ""});
  store.record_score(bad, {"alice", 1, ""});

  rag::HistoryRetriever retriever(&store);
  // Initially built at construction: good (scored 4) + human.
  EXPECT_EQ(retriever.indexed(), 2u);
  (void)human;
}

TEST(HistoryRetriever, RefreshPicksUpNewScores) {
  history::HistoryStore store;
  const auto id = store.add(vetted_record("q?", "a.", "sim-gpt-4o"));
  rag::HistoryRetriever retriever(&store);
  EXPECT_EQ(retriever.indexed(), 0u);  // unscored model answer
  store.record_score(id, {"bob", 3, ""});
  retriever.refresh();
  EXPECT_EQ(retriever.indexed(), 1u);
}

TEST(HistoryRetriever, LookupReturnsRelevantPastAnswers) {
  history::HistoryStore store;
  const auto id = store.add(vetted_record(
      "Which solver for rectangular least squares systems?",
      "Use KSPLSQR; it handles rectangular matrices.", "sim-gpt-4o"));
  store.add(vetted_record("Unrelated question about time steppers",
                          "Use TSARKIMEX.", ""));
  store.record_score(id, {"alice", 4, ""});

  rag::HistoryRetriever retriever(&store);
  const auto hits =
      retriever.lookup("rectangular least squares solver choice");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, "history#" + std::to_string(id));
  EXPECT_NE(hits[0].text.find("KSPLSQR"), std::string::npos);
  // Irrelevant queries return nothing above the relevance floor.
  EXPECT_TRUE(retriever.lookup("zzz qqq completely unrelated").empty());
}

TEST(HistoryRetriever, WorkflowInjectsPastAnswersIntoBaseline) {
  // A vetted past answer makes even the retrieval-free arm grounded: the
  // Fig 3 dotted arrow in action.
  const rag::RagDatabase db =
      rag::RagDatabase::build(corpus::generate_corpus());

  history::HistoryStore store;
  const auto id = store.add(vetted_record(
      "What is the best way to frobnicate the Krylov basis cache?",
      "Enable the basis cache with KSPGMRESSetRestart and a larger restart; "
      "this is the vetted team answer.",
      ""));  // human answer
  (void)id;
  rag::HistoryRetriever retriever(&store);

  rag::AugmentedWorkflow workflow(db, rag::PipelineArm::Baseline,
                                  llm::model_config("sim-gpt-4o"));
  workflow.attach_history_retrieval(&retriever);
  const rag::WorkflowOutcome outcome = workflow.ask(
      "What is the best way to frobnicate the Krylov basis cache?");
  // The model answered from the injected history context.
  EXPECT_EQ(outcome.response.mode, "grounded");
  EXPECT_NE(outcome.response.text.find("vetted team answer"),
            std::string::npos);
}

TEST(HistoryRetriever, NullStoreThrows) {
  EXPECT_THROW(rag::HistoryRetriever(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace pkb
