// Unit tests for the resilience layer's building blocks: deterministic
// fault plans, deadline budgets, retry backoff, the circuit breaker, the
// SimClock wait hooks, and the per-entry cache TTL override. End-to-end
// fault handling through the pipeline lives in chaos_test.cpp. Suite names
// (Resilience*, FaultPlan*, CircuitBreaker*, SimClock*, ShardedLruCache*)
// are part of the scripts/run_tsan.sh filter.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "resilience/fault.h"
#include "resilience/fault_plan.h"
#include "resilience/policy.h"
#include "resilience/resilience.h"
#include "serve/lru_cache.h"
#include "util/clock.h"

namespace pkb::resilience {
namespace {

// --- FaultPlan ------------------------------------------------------------

TEST(FaultPlan, ZeroRatesNeverFault) {
  FaultPlan plan;
  for (int i = 0; i < 100; ++i) {
    const FaultDecision d = plan.decide(Stage::Llm);
    EXPECT_EQ(d.kind, FaultKind::None);
    EXPECT_EQ(d.extra_latency_seconds, 0.0);
  }
  EXPECT_EQ(plan.counts(Stage::Llm).calls, 100u);
  EXPECT_EQ(plan.counts(Stage::Llm).faults(), 0u);
}

TEST(FaultPlan, DeterministicAcrossInstances) {
  FaultPlanOptions opts;
  opts.seed = 7;
  opts.llm.transient_rate = 0.2;
  opts.llm.permanent_rate = 0.1;
  opts.llm.timeout_rate = 0.1;
  opts.llm.spike_rate = 0.1;
  FaultPlan a(opts);
  FaultPlan b(opts);
  for (int i = 0; i < 500; ++i) {
    const FaultDecision da = a.decide(Stage::Llm);
    const FaultDecision db = b.decide(Stage::Llm);
    EXPECT_EQ(da.kind, db.kind) << "call " << i;
    EXPECT_EQ(da.extra_latency_seconds, db.extra_latency_seconds);
  }
  // A different seed draws a different sequence.
  opts.seed = 8;
  FaultPlan c(opts);
  int diff = 0;
  FaultPlan a2(a.options());
  for (int i = 0; i < 500; ++i) {
    if (a2.decide(Stage::Llm).kind != c.decide(Stage::Llm).kind) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(FaultPlan, StagesDrawIndependently) {
  FaultPlanOptions opts;
  opts.llm.transient_rate = 1.0;  // every LLM call faults...
  FaultPlan plan(opts);
  EXPECT_EQ(plan.decide(Stage::Llm).kind, FaultKind::Transient);
  // ...while other stages stay clean.
  EXPECT_EQ(plan.decide(Stage::VectorSearch).kind, FaultKind::None);
  EXPECT_EQ(plan.decide(Stage::Rerank).kind, FaultKind::None);
  EXPECT_EQ(plan.decide(Stage::Ingest).kind, FaultKind::None);
}

TEST(FaultPlan, RatesApproximateOverManyDraws) {
  FaultPlanOptions opts;
  opts.seed = 42;
  opts.rerank.timeout_rate = 0.3;
  FaultPlan plan(opts);
  const int n = 4000;
  for (int i = 0; i < n; ++i) (void)plan.decide(Stage::Rerank);
  const auto counts = plan.counts(Stage::Rerank);
  EXPECT_EQ(counts.calls, static_cast<std::uint64_t>(n));
  EXPECT_EQ(counts.faults(), counts.timeout);
  const double rate = static_cast<double>(counts.timeout) / n;
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(FaultPlan, SpikeCarriesConfiguredLatency) {
  FaultPlanOptions opts;
  opts.llm.spike_rate = 1.0;
  opts.llm.spike_seconds = 2.5;
  FaultPlan plan(opts);
  const FaultDecision d = plan.decide(Stage::Llm);
  EXPECT_EQ(d.kind, FaultKind::LatencySpike);
  EXPECT_DOUBLE_EQ(d.extra_latency_seconds, 2.5);
}

TEST(FaultPlan, ScriptPinsLeadingOutcomesThenFallsBack) {
  FaultPlan plan;  // all rates 0: fallback is always None
  plan.script(Stage::Llm, {FaultKind::Transient, FaultKind::None,
                           FaultKind::Timeout, FaultKind::Permanent});
  EXPECT_EQ(plan.decide(Stage::Llm).kind, FaultKind::Transient);
  EXPECT_EQ(plan.decide(Stage::Llm).kind, FaultKind::None);
  EXPECT_EQ(plan.decide(Stage::Llm).kind, FaultKind::Timeout);
  EXPECT_EQ(plan.decide(Stage::Llm).kind, FaultKind::Permanent);
  EXPECT_EQ(plan.decide(Stage::Llm).kind, FaultKind::None);  // fallback
  const auto counts = plan.counts(Stage::Llm);
  EXPECT_EQ(counts.calls, 5u);
  EXPECT_EQ(counts.transient, 1u);
  EXPECT_EQ(counts.timeout, 1u);
  EXPECT_EQ(counts.permanent, 1u);
}

TEST(FaultPlan, ConsultThrowsTypedErrorsAndReturnsSpikes) {
  EXPECT_EQ(consult(nullptr, Stage::Llm), 0.0);  // null plan is a no-op

  FaultPlanOptions opts;
  opts.llm.spike_seconds = 3.0;
  FaultPlan plan(opts);
  plan.script(Stage::Llm, {FaultKind::Transient, FaultKind::Permanent,
                           FaultKind::Timeout, FaultKind::LatencySpike,
                           FaultKind::None});
  EXPECT_THROW((void)consult(&plan, Stage::Llm), TransientError);
  EXPECT_THROW((void)consult(&plan, Stage::Llm), PermanentError);
  try {
    (void)consult(&plan, Stage::Llm);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.stage(), Stage::Llm);
  }
  EXPECT_DOUBLE_EQ(consult(&plan, Stage::Llm), 3.0);
  EXPECT_DOUBLE_EQ(consult(&plan, Stage::Llm), 0.0);
}

TEST(FaultPlan, ConcurrentConsumersSeeTheSameOutcomeMultiset) {
  FaultPlanOptions opts;
  opts.seed = 11;
  opts.vector_search.transient_rate = 0.25;
  const int n = 400;

  // Serial reference run.
  FaultPlan serial(opts);
  for (int i = 0; i < n; ++i) (void)serial.decide(Stage::VectorSearch);

  // Racing consumers on a second identical plan.
  FaultPlan racing(opts);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&racing] {
      for (int i = 0; i < n / 4; ++i) {
        (void)racing.decide(Stage::VectorSearch);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(racing.counts(Stage::VectorSearch).calls, serial.counts(Stage::VectorSearch).calls);
  EXPECT_EQ(racing.counts(Stage::VectorSearch).transient,
            serial.counts(Stage::VectorSearch).transient);
}

// --- DeadlineBudget -------------------------------------------------------

TEST(ResiliencePolicy, DefaultBudgetIsUnlimited) {
  DeadlineBudget b;
  EXPECT_TRUE(b.unlimited());
  EXPECT_FALSE(b.exhausted());
  b.charge(1e9);
  EXPECT_FALSE(b.exhausted());
  EXPECT_TRUE(std::isinf(b.remaining_seconds()));
}

TEST(ResiliencePolicy, BudgetChargesClampToRemaining) {
  DeadlineBudget b(10.0);
  EXPECT_FALSE(b.unlimited());
  b.charge(4.0);
  EXPECT_DOUBLE_EQ(b.spent_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(b.remaining_seconds(), 6.0);
  b.charge(100.0);  // clamped: the overrunning stage consumed the rest
  EXPECT_DOUBLE_EQ(b.spent_seconds(), 10.0);
  EXPECT_TRUE(b.exhausted());
  EXPECT_DOUBLE_EQ(b.remaining_seconds(), 0.0);
}

TEST(ResiliencePolicy, ExhaustTakesTheWholeRemainder) {
  DeadlineBudget b(5.0);
  b.charge(1.0);
  b.exhaust();
  EXPECT_TRUE(b.exhausted());
  EXPECT_DOUBLE_EQ(b.spent_seconds(), 5.0);
}

// --- RetryPolicy ----------------------------------------------------------

TEST(ResiliencePolicy, BackoffGrowsExponentiallyWithoutJitter) {
  RetryPolicy policy;
  policy.base_backoff_seconds = 0.5;
  policy.multiplier = 2.0;
  policy.max_backoff_seconds = 3.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(3, 1), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(4, 1), 3.0);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(10, 1), 3.0);
}

TEST(ResiliencePolicy, BackoffJitterIsDeterministicAndBounded) {
  RetryPolicy policy;  // base 0.25, x2, cap 5, jitter 0.2
  for (std::uint32_t retry = 1; retry <= 6; ++retry) {
    const double a = policy.backoff_seconds(retry, 99);
    const double b = policy.backoff_seconds(retry, 99);
    EXPECT_DOUBLE_EQ(a, b) << "same (seed, retry) must repeat";
    RetryPolicy bare = policy;
    bare.jitter = 0.0;
    const double nominal = bare.backoff_seconds(retry, 99);
    EXPECT_GE(a, nominal * 0.8);
    EXPECT_LE(a, nominal * 1.2);
  }
  // Different seeds decorrelate the jitter.
  int diff = 0;
  for (std::uint32_t retry = 1; retry <= 6; ++retry) {
    if (policy.backoff_seconds(retry, 1) != policy.backoff_seconds(retry, 2)) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 0);
}

// --- CircuitBreaker -------------------------------------------------------

/// A hand-cranked clock for breaker cooldowns.
struct FakeClock {
  double now = 0.0;
  [[nodiscard]] Clock callable() {
    return [this] { return now; };
  }
};

TEST(CircuitBreaker, StaysClosedBelowThreshold) {
  FakeClock clock;
  BreakerOptions opts;
  opts.window = 8;
  opts.min_samples = 4;
  opts.failure_threshold = 0.5;
  CircuitBreaker breaker(opts, clock.callable());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_success();
  }
  // One failure in a window of successes is far below the threshold.
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
}

TEST(CircuitBreaker, TripsAtThresholdAndShortCircuits) {
  FakeClock clock;
  BreakerOptions opts;
  opts.window = 8;
  opts.min_samples = 4;
  opts.failure_threshold = 0.5;
  opts.open_seconds = 30.0;
  CircuitBreaker breaker(opts, clock.callable());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed)
        << "below min_samples after " << i + 1 << " failures";
  }
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();  // 4th failure: min_samples met, rate 1.0
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow());  // fail fast while the cooldown runs
  clock.now = 29.9;
  EXPECT_FALSE(breaker.allow());
}

TEST(CircuitBreaker, CooldownProbesHalfOpenThenCloses) {
  FakeClock clock;
  BreakerOptions opts;
  opts.window = 4;
  opts.min_samples = 2;
  opts.failure_threshold = 0.5;
  opts.open_seconds = 10.0;
  opts.half_open_probes = 2;
  CircuitBreaker breaker(opts, clock.callable());
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::Open);

  clock.now = 10.5;
  ASSERT_TRUE(breaker.allow());  // cooldown elapsed: first half-open probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  ASSERT_TRUE(breaker.allow());  // second probe
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  // The outcome window was reset: old failures don't linger.
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
}

TEST(CircuitBreaker, HalfOpenFailureReopensAndReArmsCooldown) {
  FakeClock clock;
  BreakerOptions opts;
  opts.window = 4;
  opts.min_samples = 2;
  opts.failure_threshold = 0.5;
  opts.open_seconds = 10.0;
  opts.half_open_probes = 1;
  CircuitBreaker breaker(opts, clock.callable());
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::Open);

  clock.now = 11.0;
  ASSERT_TRUE(breaker.allow());  // probe
  breaker.record_failure();      // the dependency is still down
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow());  // cooldown re-armed from now
  clock.now = 20.0;
  EXPECT_FALSE(breaker.allow());
  clock.now = 21.5;
  EXPECT_TRUE(breaker.allow());
}

// --- Resilience engine ----------------------------------------------------

TEST(Resilience, ContextsCarryBudgetAndDecorrelatedJitter) {
  ResilienceOptions opts;
  opts.request_deadline_seconds = 45.0;
  opts.seed = 3;
  Resilience engine(opts);
  RequestContext a = engine.make_context();
  RequestContext b = engine.make_context();
  EXPECT_EQ(a.engine, &engine);
  EXPECT_DOUBLE_EQ(a.budget.budget_seconds(), 45.0);
  EXPECT_EQ(a.level, DegradationLevel::Full);
  EXPECT_NE(a.jitter_seed, b.jitter_seed);
}

TEST(Resilience, DegradeIsOneWayWorstWins) {
  RequestContext ctx;
  EXPECT_FALSE(ctx.degraded());
  ctx.degrade(DegradationLevel::Extractive);
  EXPECT_EQ(ctx.level, DegradationLevel::Extractive);
  ctx.degrade(DegradationLevel::Unreranked);  // better: ignored
  EXPECT_EQ(ctx.level, DegradationLevel::Extractive);
  ctx.degrade(DegradationLevel::Unavailable);  // worse: recorded
  EXPECT_EQ(ctx.level, DegradationLevel::Unavailable);
  EXPECT_TRUE(ctx.degraded());
}

TEST(Resilience, LevelNamesAreStable) {
  EXPECT_EQ(to_string(DegradationLevel::Full), "full");
  EXPECT_EQ(to_string(DegradationLevel::Unreranked), "unreranked");
  EXPECT_EQ(to_string(DegradationLevel::NoRetrieval), "no_retrieval");
  EXPECT_EQ(to_string(DegradationLevel::Extractive), "extractive");
  EXPECT_EQ(to_string(DegradationLevel::Unavailable), "unavailable");
}

// --- SimClock wait hooks --------------------------------------------------

TEST(SimClockWait, WaitUntilWakesWhenAdvanceReachesTarget) {
  pkb::util::SimClock clock;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_TRUE(clock.wait_until(5.0, /*real_timeout_seconds=*/5.0));
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  clock.advance(2.0);  // not there yet
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  clock.advance(3.0);  // 5.0 reached: waiter wakes
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(SimClockWait, WaitUntilPastTimeReturnsImmediately) {
  pkb::util::SimClock clock(10.0);
  EXPECT_TRUE(clock.wait_until(5.0, 0.001));
  EXPECT_TRUE(clock.wait_for(0.0, 0.001));
}

TEST(SimClockWait, WaitForTimesOutInRealTimeWhenNobodyAdvances) {
  pkb::util::SimClock clock;
  EXPECT_FALSE(clock.wait_for(100.0, /*real_timeout_seconds=*/0.05));
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(SimClockWait, AdvanceToWakesWaiters) {
  pkb::util::SimClock clock;
  std::thread waiter([&] { EXPECT_TRUE(clock.wait_until(7.0, 5.0)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  clock.advance_to(7.0);
  waiter.join();
}

// --- ShardedLruCache per-entry TTL ----------------------------------------

TEST(ShardedLruCache, PerEntryTtlOverridesCacheWidePolicy) {
  FakeClock clock;
  pkb::serve::LruCacheOptions opts;
  opts.capacity = 16;
  opts.shards = 2;
  opts.ttl_seconds = 100.0;
  opts.clock = [&clock] { return clock.now; };
  pkb::serve::ShardedLruCache<std::string, int> cache(opts);

  cache.put("durable", 1);                   // cache-wide 100 s TTL
  cache.put_with_ttl("ephemeral", 2, 2.0);   // short per-entry override
  EXPECT_EQ(cache.get("durable").value_or(-1), 1);
  EXPECT_EQ(cache.get("ephemeral").value_or(-1), 2);

  clock.now = 5.0;  // past the override, well inside the cache-wide TTL
  EXPECT_EQ(cache.get("durable").value_or(-1), 1);
  EXPECT_FALSE(cache.get("ephemeral").has_value());

  // Overwriting with plain put() clears the override.
  cache.put_with_ttl("key", 3, 2.0);
  cache.put("key", 4);
  clock.now = 10.0;
  EXPECT_EQ(cache.get("key").value_or(-1), 4);
}

}  // namespace
}  // namespace pkb::resilience
