#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pkb::util {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, ScalarConstructionAndDump) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(3).dump(), "3");
  EXPECT_EQ(Json(3.5).dump(), "3.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegerValuedDoublesPrintWithoutDecimal) {
  EXPECT_EQ(Json(1e6).dump(), "1000000");
  EXPECT_EQ(Json(-42.0).dump(), "-42");
}

TEST(Json, ObjectInsertionOrderPreserved) {
  Json obj = Json::object();
  obj.set("z", 1).set("a", 2).set("m", 3);
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
}

TEST(Json, SetOverwritesExistingKey) {
  Json obj = Json::object();
  obj.set("k", 1);
  obj.set("k", 2);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.at("k").as_int(), 2);
}

TEST(Json, ArrayPushBack) {
  Json arr = Json::array();
  arr.push_back(1).push_back("two").push_back(Json());
  EXPECT_EQ(arr.dump(), "[1,\"two\",null]");
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(1).as_string(), "two");
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  Json s("str");
  EXPECT_THROW(s.as_number(), JsonError);
  EXPECT_THROW(s.as_array(), JsonError);
  EXPECT_THROW(s.as_object(), JsonError);
  EXPECT_THROW(Json(1.0).as_string(), JsonError);
  EXPECT_THROW(Json().as_bool(), JsonError);
}

TEST(Json, AtThrowsForMissingKeyFindReturnsNull) {
  Json obj = Json::object();
  obj.set("present", 1);
  EXPECT_EQ(obj.find("absent"), nullptr);
  EXPECT_NE(obj.find("present"), nullptr);
  EXPECT_THROW(obj.at("absent"), JsonError);
}

TEST(Json, GetHelpersFallBackToDefaults) {
  Json obj = Json::object();
  obj.set("s", "v").set("n", 2.5).set("b", true).set("i", 7);
  EXPECT_EQ(obj.get_string("s"), "v");
  EXPECT_EQ(obj.get_string("zz", "def"), "def");
  EXPECT_DOUBLE_EQ(obj.get_number("n"), 2.5);
  EXPECT_DOUBLE_EQ(obj.get_number("zz", -1), -1);
  EXPECT_TRUE(obj.get_bool("b"));
  EXPECT_EQ(obj.get_int("i"), 7);
  // Wrong-typed value also falls back.
  EXPECT_EQ(obj.get_string("n", "def"), "def");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(Json::parse("\"abc\"").as_string(), "abc");
}

TEST(Json, ParseNested) {
  const Json j = Json::parse(R"({"a":[1,{"b":"x"},null],"c":{"d":true}})");
  EXPECT_EQ(j.at("a").at(1).at("b").as_string(), "x");
  EXPECT_TRUE(j.at("c").at("d").as_bool());
  EXPECT_TRUE(j.at("a").at(2).is_null());
}

TEST(Json, ParseWhitespaceTolerant) {
  const Json j = Json::parse("  {\n\t\"k\" :  [ 1 , 2 ]\r\n}  ");
  EXPECT_EQ(j.at("k").size(), 2u);
}

TEST(Json, ParseStringEscapes) {
  const Json j = Json::parse(R"("line\nbreak\t\"q\" \\ \/ A")");
  EXPECT_EQ(j.as_string(), "line\nbreak\t\"q\" \\ / A");
}

TEST(Json, ParseUnicodeEscapeToUtf8) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // e-acute
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // euro
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  // Literal UTF-8 bytes pass through untouched.
  EXPECT_EQ(Json::parse("\"\xc3\xa9\"").as_string(), "\xc3\xa9");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("{'single':1}"), JsonError);
}

TEST(Json, RoundTripCompact) {
  const std::string src =
      R"({"q":"What does KSPBurb do?","score":4,"tags":["rag","rerank"],"ok":true,"note":null})";
  const Json j = Json::parse(src);
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(Json, RoundTripPretty) {
  Json obj = Json::object();
  obj.set("arr", Json::array());
  obj.at("arr");  // ensure access works
  Json arr = Json::array();
  arr.push_back(1).push_back(2);
  obj.set("arr", std::move(arr));
  obj.set("nested", Json::object().set("k", "v"));
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), obj);
}

TEST(Json, EqualityIsStructural) {
  EXPECT_EQ(Json::parse("[1,2]"), Json::parse("[1, 2]"));
  EXPECT_NE(Json::parse("[1,2]"), Json::parse("[2,1]"));
  EXPECT_NE(Json(1.0), Json("1"));
}

TEST(Json, EscapeControlCharacters) {
  Json j(std::string("a\x01z"));
  EXPECT_EQ(j.dump(), "\"a\\u0001z\"");
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_EQ(Json::parse("{}").size(), 0u);
}

TEST(Json, NanSerializesAsNull) {
  const Json j(std::nan(""));
  EXPECT_EQ(j.dump(), "null");
}

}  // namespace
}  // namespace pkb::util
