#include <gtest/gtest.h>

#include "post/code_check.h"
#include "post/markdown_html.h"
#include "post/postprocessor.h"

namespace pkb::post {
namespace {

TEST(HtmlEscape, EscapesSpecials) {
  EXPECT_EQ(html_escape("a < b & c > \"d\""),
            "a &lt; b &amp; c &gt; &quot;d&quot;");
  EXPECT_EQ(html_escape("plain"), "plain");
}

TEST(InlineHtml, CodeEmphasisLinks) {
  EXPECT_EQ(inline_to_html("use `KSPSolve` now"),
            "use <code>KSPSolve</code> now");
  EXPECT_EQ(inline_to_html("**bold** and *em*"),
            "<strong>bold</strong> and <em>em</em>");
  EXPECT_EQ(inline_to_html("[docs](https://petsc.org)"),
            "<a href=\"https://petsc.org\">docs</a>");
}

TEST(InlineHtml, EscapesInsideCode) {
  EXPECT_EQ(inline_to_html("`a < b`"), "<code>a &lt; b</code>");
}

TEST(MarkdownHtml, FullDocument) {
  const std::string html = markdown_to_html(
      "# Title\n\npara with `code`\n\n- item one\n- item two\n\n```c\nint "
      "x;\n```\n\n| A | B |\n|---|---|\n| 1 | 2 |\n\n> quoted\n\n---\n");
  EXPECT_NE(html.find("<h1>Title</h1>"), std::string::npos);
  EXPECT_NE(html.find("<p>para with <code>code</code></p>"),
            std::string::npos);
  EXPECT_NE(html.find("<ul>"), std::string::npos);
  EXPECT_NE(html.find("<li>item one</li>"), std::string::npos);
  EXPECT_NE(html.find("<pre><code class=\"language-c\">int x;</code></pre>"),
            std::string::npos);
  EXPECT_NE(html.find("<table>"), std::string::npos);
  EXPECT_NE(html.find("<th>A</th>"), std::string::npos);
  EXPECT_NE(html.find("<blockquote>quoted</blockquote>"), std::string::npos);
  EXPECT_NE(html.find("<hr/>"), std::string::npos);
}

TEST(MarkdownHtml, OrderedList) {
  const std::string html = markdown_to_html("1. first\n2. second\n");
  EXPECT_NE(html.find("<ol>"), std::string::npos);
  EXPECT_NE(html.find("<li>second</li>"), std::string::npos);
}

TEST(CodeCheck, ExtractsBlocksWithLanguages) {
  const auto blocks = extract_code_blocks(
      "text\n\n```c\nint x;\n```\n\nmore\n\n```console\n./app -ksp_view\n"
      "```\n");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].language, "c");
  EXPECT_EQ(blocks[1].language, "console");
}

TEST(CodeCheck, BalancedCodePasses) {
  CodeBlock block{"c",
                  "KSPCreate(PETSC_COMM_WORLD, &ksp);\n"
                  "KSPSetType(ksp, KSPGMRES);\n"
                  "KSPSolve(ksp, b, x);\n"};
  const CodeCheckReport report = check_code(block);
  EXPECT_TRUE(report.ok) << (report.diagnostics.empty()
                                 ? ""
                                 : report.diagnostics[0].message);
}

TEST(CodeCheck, UnbalancedBracesFail) {
  EXPECT_FALSE(check_code({"c", "if (x) { doit();"}).ok);
  EXPECT_FALSE(check_code({"c", "foo(a, b));"}).ok);
  EXPECT_FALSE(check_code({"c", "char* s = \"unterminated;"}).ok);
}

TEST(CodeCheck, BracesInsideStringsAndCommentsIgnored) {
  EXPECT_TRUE(check_code({"c", "printf(\"} not a brace {\");"}).ok);
  EXPECT_TRUE(check_code({"c", "// comment with } unbalanced {\nint x;"}).ok);
  EXPECT_TRUE(check_code({"c", "/* { */ int y; /* } */"}).ok);
}

TEST(CodeCheck, HallucinatedSymbolIsAnError) {
  const CodeCheckReport report =
      check_code({"c", "KSPSolveBlocked(ksp, b, x);"});
  EXPECT_FALSE(report.ok);
  bool mentioned = false;
  for (const auto& diag : report.diagnostics) {
    if (diag.message.find("KSPSolveBlocked") != std::string::npos) {
      mentioned = true;
    }
  }
  EXPECT_TRUE(mentioned);
}

TEST(CodeCheck, KnownSymbolsAndAllowlistPass) {
  EXPECT_TRUE(check_code({"c",
                          "PetscCall(KSPCreate(PETSC_COMM_WORLD, &ksp));\n"
                          "PetscCall(KSPDestroy(&ksp));"})
                  .ok);
}

TEST(CodeCheck, ConsoleBlocksOnlyCheckOptions) {
  // Unbalanced braces are fine in console blocks; unknown options warn.
  const CodeCheckReport ok = check_code({"console", "./app -ksp_type gmres"});
  EXPECT_TRUE(ok.ok);
  const CodeCheckReport warn =
      check_code({"console", "./app -ksp_burb_factor 2"});
  EXPECT_TRUE(warn.ok);  // warning, not error
  ASSERT_FALSE(warn.diagnostics.empty());
  EXPECT_EQ(warn.diagnostics[0].severity, CodeDiagnostic::Severity::Warning);
}

TEST(Postprocessor, MarkdownPath) {
  const ProcessedOutput out = postprocess_llm_output(
      "Use `KSPLSQR` for this.\n\n- step one\n- step two\n\n```c\n"
      "KSPSetType(ksp, KSPLSQR);\n```\n");
  EXPECT_FALSE(out.was_json);
  EXPECT_NE(out.plain_text.find("KSPLSQR"), std::string::npos);
  EXPECT_NE(out.html.find("<li>step one</li>"), std::string::npos);
  ASSERT_EQ(out.list_items.size(), 2u);
  EXPECT_EQ(out.list_items[1], "step two");
  ASSERT_EQ(out.code_reports.size(), 1u);
  EXPECT_TRUE(out.all_code_ok);
}

TEST(Postprocessor, JsonPath) {
  const ProcessedOutput out = postprocess_llm_output(
      R"({"answer":"Use **KSPLSQR**.","sources":["manualpages/KSP/KSPLSQR.md#0"],"model":"sim-gpt-4o"})");
  EXPECT_TRUE(out.was_json);
  EXPECT_EQ(out.plain_text, "Use KSPLSQR.");
  ASSERT_EQ(out.sources.size(), 1u);
  EXPECT_EQ(out.sources[0], "manualpages/KSP/KSPLSQR.md#0");
}

TEST(Postprocessor, MalformedJsonFallsBackToMarkdown) {
  const ProcessedOutput out = postprocess_llm_output("{not json at all");
  EXPECT_FALSE(out.was_json);
  EXPECT_NE(out.plain_text.find("not json"), std::string::npos);
}

TEST(Postprocessor, BadCodeFlagsNotOk) {
  const ProcessedOutput out = postprocess_llm_output(
      "Try this:\n\n```c\nKSPSolveTurbo(ksp;\n```\n");
  EXPECT_FALSE(out.all_code_ok);
}

}  // namespace
}  // namespace pkb::post
