# Empty compiler generated dependencies file for pkb_eval.
# This may be replaced when dependencies are built.
