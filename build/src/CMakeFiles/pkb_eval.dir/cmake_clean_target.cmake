file(REMOVE_RECURSE
  "libpkb_eval.a"
)
