file(REMOVE_RECURSE
  "CMakeFiles/pkb_eval.dir/eval/rubric.cpp.o"
  "CMakeFiles/pkb_eval.dir/eval/rubric.cpp.o.d"
  "CMakeFiles/pkb_eval.dir/eval/runner.cpp.o"
  "CMakeFiles/pkb_eval.dir/eval/runner.cpp.o.d"
  "libpkb_eval.a"
  "libpkb_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
