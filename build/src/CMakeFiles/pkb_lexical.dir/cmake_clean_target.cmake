file(REMOVE_RECURSE
  "libpkb_lexical.a"
)
