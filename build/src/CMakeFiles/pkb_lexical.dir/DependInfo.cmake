
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lexical/bm25.cpp" "src/CMakeFiles/pkb_lexical.dir/lexical/bm25.cpp.o" "gcc" "src/CMakeFiles/pkb_lexical.dir/lexical/bm25.cpp.o.d"
  "/root/repo/src/lexical/keyword_search.cpp" "src/CMakeFiles/pkb_lexical.dir/lexical/keyword_search.cpp.o" "gcc" "src/CMakeFiles/pkb_lexical.dir/lexical/keyword_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
