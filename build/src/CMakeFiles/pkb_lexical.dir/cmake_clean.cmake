file(REMOVE_RECURSE
  "CMakeFiles/pkb_lexical.dir/lexical/bm25.cpp.o"
  "CMakeFiles/pkb_lexical.dir/lexical/bm25.cpp.o.d"
  "CMakeFiles/pkb_lexical.dir/lexical/keyword_search.cpp.o"
  "CMakeFiles/pkb_lexical.dir/lexical/keyword_search.cpp.o.d"
  "libpkb_lexical.a"
  "libpkb_lexical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_lexical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
