# Empty dependencies file for pkb_lexical.
# This may be replaced when dependencies are built.
