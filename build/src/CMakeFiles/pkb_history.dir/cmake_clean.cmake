file(REMOVE_RECURSE
  "CMakeFiles/pkb_history.dir/history/store.cpp.o"
  "CMakeFiles/pkb_history.dir/history/store.cpp.o.d"
  "libpkb_history.a"
  "libpkb_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
