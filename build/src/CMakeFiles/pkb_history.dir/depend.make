# Empty dependencies file for pkb_history.
# This may be replaced when dependencies are built.
