file(REMOVE_RECURSE
  "libpkb_history.a"
)
