file(REMOVE_RECURSE
  "libpkb_llm.a"
)
