# Empty dependencies file for pkb_llm.
# This may be replaced when dependencies are built.
