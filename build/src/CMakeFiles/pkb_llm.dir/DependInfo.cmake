
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/hallucination.cpp" "src/CMakeFiles/pkb_llm.dir/llm/hallucination.cpp.o" "gcc" "src/CMakeFiles/pkb_llm.dir/llm/hallucination.cpp.o.d"
  "/root/repo/src/llm/model_config.cpp" "src/CMakeFiles/pkb_llm.dir/llm/model_config.cpp.o" "gcc" "src/CMakeFiles/pkb_llm.dir/llm/model_config.cpp.o.d"
  "/root/repo/src/llm/parametric.cpp" "src/CMakeFiles/pkb_llm.dir/llm/parametric.cpp.o" "gcc" "src/CMakeFiles/pkb_llm.dir/llm/parametric.cpp.o.d"
  "/root/repo/src/llm/sim_llm.cpp" "src/CMakeFiles/pkb_llm.dir/llm/sim_llm.cpp.o" "gcc" "src/CMakeFiles/pkb_llm.dir/llm/sim_llm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_lexical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
