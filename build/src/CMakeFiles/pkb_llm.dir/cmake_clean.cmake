file(REMOVE_RECURSE
  "CMakeFiles/pkb_llm.dir/llm/hallucination.cpp.o"
  "CMakeFiles/pkb_llm.dir/llm/hallucination.cpp.o.d"
  "CMakeFiles/pkb_llm.dir/llm/model_config.cpp.o"
  "CMakeFiles/pkb_llm.dir/llm/model_config.cpp.o.d"
  "CMakeFiles/pkb_llm.dir/llm/parametric.cpp.o"
  "CMakeFiles/pkb_llm.dir/llm/parametric.cpp.o.d"
  "CMakeFiles/pkb_llm.dir/llm/sim_llm.cpp.o"
  "CMakeFiles/pkb_llm.dir/llm/sim_llm.cpp.o.d"
  "libpkb_llm.a"
  "libpkb_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
