# Empty dependencies file for pkb_text.
# This may be replaced when dependencies are built.
