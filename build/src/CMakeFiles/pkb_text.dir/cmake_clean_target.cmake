file(REMOVE_RECURSE
  "libpkb_text.a"
)
