
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/loader.cpp" "src/CMakeFiles/pkb_text.dir/text/loader.cpp.o" "gcc" "src/CMakeFiles/pkb_text.dir/text/loader.cpp.o.d"
  "/root/repo/src/text/markdown.cpp" "src/CMakeFiles/pkb_text.dir/text/markdown.cpp.o" "gcc" "src/CMakeFiles/pkb_text.dir/text/markdown.cpp.o.d"
  "/root/repo/src/text/splitter.cpp" "src/CMakeFiles/pkb_text.dir/text/splitter.cpp.o" "gcc" "src/CMakeFiles/pkb_text.dir/text/splitter.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/CMakeFiles/pkb_text.dir/text/tokenizer.cpp.o" "gcc" "src/CMakeFiles/pkb_text.dir/text/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
