file(REMOVE_RECURSE
  "CMakeFiles/pkb_text.dir/text/loader.cpp.o"
  "CMakeFiles/pkb_text.dir/text/loader.cpp.o.d"
  "CMakeFiles/pkb_text.dir/text/markdown.cpp.o"
  "CMakeFiles/pkb_text.dir/text/markdown.cpp.o.d"
  "CMakeFiles/pkb_text.dir/text/splitter.cpp.o"
  "CMakeFiles/pkb_text.dir/text/splitter.cpp.o.d"
  "CMakeFiles/pkb_text.dir/text/tokenizer.cpp.o"
  "CMakeFiles/pkb_text.dir/text/tokenizer.cpp.o.d"
  "libpkb_text.a"
  "libpkb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
