file(REMOVE_RECURSE
  "CMakeFiles/pkb_embed.dir/embed/blend.cpp.o"
  "CMakeFiles/pkb_embed.dir/embed/blend.cpp.o.d"
  "CMakeFiles/pkb_embed.dir/embed/embedder.cpp.o"
  "CMakeFiles/pkb_embed.dir/embed/embedder.cpp.o.d"
  "CMakeFiles/pkb_embed.dir/embed/hashing.cpp.o"
  "CMakeFiles/pkb_embed.dir/embed/hashing.cpp.o.d"
  "CMakeFiles/pkb_embed.dir/embed/lsa.cpp.o"
  "CMakeFiles/pkb_embed.dir/embed/lsa.cpp.o.d"
  "CMakeFiles/pkb_embed.dir/embed/tfidf.cpp.o"
  "CMakeFiles/pkb_embed.dir/embed/tfidf.cpp.o.d"
  "libpkb_embed.a"
  "libpkb_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
