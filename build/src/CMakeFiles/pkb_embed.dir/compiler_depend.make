# Empty compiler generated dependencies file for pkb_embed.
# This may be replaced when dependencies are built.
