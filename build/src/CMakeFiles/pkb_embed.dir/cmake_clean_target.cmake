file(REMOVE_RECURSE
  "libpkb_embed.a"
)
