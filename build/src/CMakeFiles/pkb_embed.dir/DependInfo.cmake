
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/blend.cpp" "src/CMakeFiles/pkb_embed.dir/embed/blend.cpp.o" "gcc" "src/CMakeFiles/pkb_embed.dir/embed/blend.cpp.o.d"
  "/root/repo/src/embed/embedder.cpp" "src/CMakeFiles/pkb_embed.dir/embed/embedder.cpp.o" "gcc" "src/CMakeFiles/pkb_embed.dir/embed/embedder.cpp.o.d"
  "/root/repo/src/embed/hashing.cpp" "src/CMakeFiles/pkb_embed.dir/embed/hashing.cpp.o" "gcc" "src/CMakeFiles/pkb_embed.dir/embed/hashing.cpp.o.d"
  "/root/repo/src/embed/lsa.cpp" "src/CMakeFiles/pkb_embed.dir/embed/lsa.cpp.o" "gcc" "src/CMakeFiles/pkb_embed.dir/embed/lsa.cpp.o.d"
  "/root/repo/src/embed/tfidf.cpp" "src/CMakeFiles/pkb_embed.dir/embed/tfidf.cpp.o" "gcc" "src/CMakeFiles/pkb_embed.dir/embed/tfidf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
