file(REMOVE_RECURSE
  "CMakeFiles/pkb_vectordb.dir/vectordb/ivf.cpp.o"
  "CMakeFiles/pkb_vectordb.dir/vectordb/ivf.cpp.o.d"
  "CMakeFiles/pkb_vectordb.dir/vectordb/vector_store.cpp.o"
  "CMakeFiles/pkb_vectordb.dir/vectordb/vector_store.cpp.o.d"
  "libpkb_vectordb.a"
  "libpkb_vectordb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_vectordb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
