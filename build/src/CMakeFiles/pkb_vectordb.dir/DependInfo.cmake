
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vectordb/ivf.cpp" "src/CMakeFiles/pkb_vectordb.dir/vectordb/ivf.cpp.o" "gcc" "src/CMakeFiles/pkb_vectordb.dir/vectordb/ivf.cpp.o.d"
  "/root/repo/src/vectordb/vector_store.cpp" "src/CMakeFiles/pkb_vectordb.dir/vectordb/vector_store.cpp.o" "gcc" "src/CMakeFiles/pkb_vectordb.dir/vectordb/vector_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
