# Empty dependencies file for pkb_vectordb.
# This may be replaced when dependencies are built.
