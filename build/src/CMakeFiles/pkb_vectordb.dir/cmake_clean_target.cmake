file(REMOVE_RECURSE
  "libpkb_vectordb.a"
)
