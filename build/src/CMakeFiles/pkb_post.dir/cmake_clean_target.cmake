file(REMOVE_RECURSE
  "libpkb_post.a"
)
