
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/post/code_check.cpp" "src/CMakeFiles/pkb_post.dir/post/code_check.cpp.o" "gcc" "src/CMakeFiles/pkb_post.dir/post/code_check.cpp.o.d"
  "/root/repo/src/post/markdown_html.cpp" "src/CMakeFiles/pkb_post.dir/post/markdown_html.cpp.o" "gcc" "src/CMakeFiles/pkb_post.dir/post/markdown_html.cpp.o.d"
  "/root/repo/src/post/postprocessor.cpp" "src/CMakeFiles/pkb_post.dir/post/postprocessor.cpp.o" "gcc" "src/CMakeFiles/pkb_post.dir/post/postprocessor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
