# Empty dependencies file for pkb_post.
# This may be replaced when dependencies are built.
