file(REMOVE_RECURSE
  "CMakeFiles/pkb_post.dir/post/code_check.cpp.o"
  "CMakeFiles/pkb_post.dir/post/code_check.cpp.o.d"
  "CMakeFiles/pkb_post.dir/post/markdown_html.cpp.o"
  "CMakeFiles/pkb_post.dir/post/markdown_html.cpp.o.d"
  "CMakeFiles/pkb_post.dir/post/postprocessor.cpp.o"
  "CMakeFiles/pkb_post.dir/post/postprocessor.cpp.o.d"
  "libpkb_post.a"
  "libpkb_post.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
