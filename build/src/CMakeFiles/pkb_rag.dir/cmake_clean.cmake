file(REMOVE_RECURSE
  "CMakeFiles/pkb_rag.dir/rag/database.cpp.o"
  "CMakeFiles/pkb_rag.dir/rag/database.cpp.o.d"
  "CMakeFiles/pkb_rag.dir/rag/history_retriever.cpp.o"
  "CMakeFiles/pkb_rag.dir/rag/history_retriever.cpp.o.d"
  "CMakeFiles/pkb_rag.dir/rag/prompts.cpp.o"
  "CMakeFiles/pkb_rag.dir/rag/prompts.cpp.o.d"
  "CMakeFiles/pkb_rag.dir/rag/retriever.cpp.o"
  "CMakeFiles/pkb_rag.dir/rag/retriever.cpp.o.d"
  "CMakeFiles/pkb_rag.dir/rag/workflow.cpp.o"
  "CMakeFiles/pkb_rag.dir/rag/workflow.cpp.o.d"
  "libpkb_rag.a"
  "libpkb_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
