
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rag/database.cpp" "src/CMakeFiles/pkb_rag.dir/rag/database.cpp.o" "gcc" "src/CMakeFiles/pkb_rag.dir/rag/database.cpp.o.d"
  "/root/repo/src/rag/history_retriever.cpp" "src/CMakeFiles/pkb_rag.dir/rag/history_retriever.cpp.o" "gcc" "src/CMakeFiles/pkb_rag.dir/rag/history_retriever.cpp.o.d"
  "/root/repo/src/rag/prompts.cpp" "src/CMakeFiles/pkb_rag.dir/rag/prompts.cpp.o" "gcc" "src/CMakeFiles/pkb_rag.dir/rag/prompts.cpp.o.d"
  "/root/repo/src/rag/retriever.cpp" "src/CMakeFiles/pkb_rag.dir/rag/retriever.cpp.o" "gcc" "src/CMakeFiles/pkb_rag.dir/rag/retriever.cpp.o.d"
  "/root/repo/src/rag/workflow.cpp" "src/CMakeFiles/pkb_rag.dir/rag/workflow.cpp.o" "gcc" "src/CMakeFiles/pkb_rag.dir/rag/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_vectordb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_rerank.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_post.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_history.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_lexical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
