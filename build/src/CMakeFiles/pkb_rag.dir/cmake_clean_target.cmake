file(REMOVE_RECURSE
  "libpkb_rag.a"
)
