# Empty compiler generated dependencies file for pkb_rag.
# This may be replaced when dependencies are built.
