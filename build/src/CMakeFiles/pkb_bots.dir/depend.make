# Empty dependencies file for pkb_bots.
# This may be replaced when dependencies are built.
