file(REMOVE_RECURSE
  "CMakeFiles/pkb_bots.dir/bots/bots_placeholder.cpp.o"
  "CMakeFiles/pkb_bots.dir/bots/bots_placeholder.cpp.o.d"
  "CMakeFiles/pkb_bots.dir/bots/chat_bot.cpp.o"
  "CMakeFiles/pkb_bots.dir/bots/chat_bot.cpp.o.d"
  "CMakeFiles/pkb_bots.dir/bots/email_bot.cpp.o"
  "CMakeFiles/pkb_bots.dir/bots/email_bot.cpp.o.d"
  "CMakeFiles/pkb_bots.dir/bots/mail.cpp.o"
  "CMakeFiles/pkb_bots.dir/bots/mail.cpp.o.d"
  "CMakeFiles/pkb_bots.dir/bots/platform.cpp.o"
  "CMakeFiles/pkb_bots.dir/bots/platform.cpp.o.d"
  "libpkb_bots.a"
  "libpkb_bots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_bots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
