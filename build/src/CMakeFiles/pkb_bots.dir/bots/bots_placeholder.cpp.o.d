src/CMakeFiles/pkb_bots.dir/bots/bots_placeholder.cpp.o: \
 /root/repo/src/bots/bots_placeholder.cpp /usr/include/stdc-predef.h
