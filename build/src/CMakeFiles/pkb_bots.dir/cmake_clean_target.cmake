file(REMOVE_RECURSE
  "libpkb_bots.a"
)
