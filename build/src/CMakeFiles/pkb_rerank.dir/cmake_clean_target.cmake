file(REMOVE_RECURSE
  "libpkb_rerank.a"
)
