# Empty compiler generated dependencies file for pkb_rerank.
# This may be replaced when dependencies are built.
