file(REMOVE_RECURSE
  "CMakeFiles/pkb_rerank.dir/rerank/cross_score.cpp.o"
  "CMakeFiles/pkb_rerank.dir/rerank/cross_score.cpp.o.d"
  "CMakeFiles/pkb_rerank.dir/rerank/flashranker.cpp.o"
  "CMakeFiles/pkb_rerank.dir/rerank/flashranker.cpp.o.d"
  "CMakeFiles/pkb_rerank.dir/rerank/reranker.cpp.o"
  "CMakeFiles/pkb_rerank.dir/rerank/reranker.cpp.o.d"
  "libpkb_rerank.a"
  "libpkb_rerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_rerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
