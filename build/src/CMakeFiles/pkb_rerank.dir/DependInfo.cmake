
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rerank/cross_score.cpp" "src/CMakeFiles/pkb_rerank.dir/rerank/cross_score.cpp.o" "gcc" "src/CMakeFiles/pkb_rerank.dir/rerank/cross_score.cpp.o.d"
  "/root/repo/src/rerank/flashranker.cpp" "src/CMakeFiles/pkb_rerank.dir/rerank/flashranker.cpp.o" "gcc" "src/CMakeFiles/pkb_rerank.dir/rerank/flashranker.cpp.o.d"
  "/root/repo/src/rerank/reranker.cpp" "src/CMakeFiles/pkb_rerank.dir/rerank/reranker.cpp.o" "gcc" "src/CMakeFiles/pkb_rerank.dir/rerank/reranker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_lexical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
