
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/api_spec.cpp" "src/CMakeFiles/pkb_corpus.dir/corpus/api_spec.cpp.o" "gcc" "src/CMakeFiles/pkb_corpus.dir/corpus/api_spec.cpp.o.d"
  "/root/repo/src/corpus/api_table_core.cpp" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_core.cpp.o" "gcc" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_core.cpp.o.d"
  "/root/repo/src/corpus/api_table_ksp.cpp" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_ksp.cpp.o" "gcc" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_ksp.cpp.o.d"
  "/root/repo/src/corpus/api_table_options.cpp" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_options.cpp.o" "gcc" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_options.cpp.o.d"
  "/root/repo/src/corpus/api_table_outer.cpp" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_outer.cpp.o" "gcc" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_outer.cpp.o.d"
  "/root/repo/src/corpus/api_table_pc.cpp" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_pc.cpp.o" "gcc" "src/CMakeFiles/pkb_corpus.dir/corpus/api_table_pc.cpp.o.d"
  "/root/repo/src/corpus/generator.cpp" "src/CMakeFiles/pkb_corpus.dir/corpus/generator.cpp.o" "gcc" "src/CMakeFiles/pkb_corpus.dir/corpus/generator.cpp.o.d"
  "/root/repo/src/corpus/mailing_list.cpp" "src/CMakeFiles/pkb_corpus.dir/corpus/mailing_list.cpp.o" "gcc" "src/CMakeFiles/pkb_corpus.dir/corpus/mailing_list.cpp.o.d"
  "/root/repo/src/corpus/questions.cpp" "src/CMakeFiles/pkb_corpus.dir/corpus/questions.cpp.o" "gcc" "src/CMakeFiles/pkb_corpus.dir/corpus/questions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
