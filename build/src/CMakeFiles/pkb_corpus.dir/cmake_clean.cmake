file(REMOVE_RECURSE
  "CMakeFiles/pkb_corpus.dir/corpus/api_spec.cpp.o"
  "CMakeFiles/pkb_corpus.dir/corpus/api_spec.cpp.o.d"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_core.cpp.o"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_core.cpp.o.d"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_ksp.cpp.o"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_ksp.cpp.o.d"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_options.cpp.o"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_options.cpp.o.d"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_outer.cpp.o"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_outer.cpp.o.d"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_pc.cpp.o"
  "CMakeFiles/pkb_corpus.dir/corpus/api_table_pc.cpp.o.d"
  "CMakeFiles/pkb_corpus.dir/corpus/generator.cpp.o"
  "CMakeFiles/pkb_corpus.dir/corpus/generator.cpp.o.d"
  "CMakeFiles/pkb_corpus.dir/corpus/mailing_list.cpp.o"
  "CMakeFiles/pkb_corpus.dir/corpus/mailing_list.cpp.o.d"
  "CMakeFiles/pkb_corpus.dir/corpus/questions.cpp.o"
  "CMakeFiles/pkb_corpus.dir/corpus/questions.cpp.o.d"
  "libpkb_corpus.a"
  "libpkb_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
