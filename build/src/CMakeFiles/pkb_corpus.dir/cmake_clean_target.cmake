file(REMOVE_RECURSE
  "libpkb_corpus.a"
)
