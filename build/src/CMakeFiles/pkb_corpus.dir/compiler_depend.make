# Empty compiler generated dependencies file for pkb_corpus.
# This may be replaced when dependencies are built.
