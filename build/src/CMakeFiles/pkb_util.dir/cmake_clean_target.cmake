file(REMOVE_RECURSE
  "libpkb_util.a"
)
