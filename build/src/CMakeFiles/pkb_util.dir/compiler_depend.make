# Empty compiler generated dependencies file for pkb_util.
# This may be replaced when dependencies are built.
