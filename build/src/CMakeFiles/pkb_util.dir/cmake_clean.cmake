file(REMOVE_RECURSE
  "CMakeFiles/pkb_util.dir/util/clock.cpp.o"
  "CMakeFiles/pkb_util.dir/util/clock.cpp.o.d"
  "CMakeFiles/pkb_util.dir/util/json.cpp.o"
  "CMakeFiles/pkb_util.dir/util/json.cpp.o.d"
  "CMakeFiles/pkb_util.dir/util/log.cpp.o"
  "CMakeFiles/pkb_util.dir/util/log.cpp.o.d"
  "CMakeFiles/pkb_util.dir/util/rng.cpp.o"
  "CMakeFiles/pkb_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/pkb_util.dir/util/stats.cpp.o"
  "CMakeFiles/pkb_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/pkb_util.dir/util/strings.cpp.o"
  "CMakeFiles/pkb_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/pkb_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/pkb_util.dir/util/thread_pool.cpp.o.d"
  "libpkb_util.a"
  "libpkb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
