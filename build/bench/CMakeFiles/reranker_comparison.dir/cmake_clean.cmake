file(REMOVE_RECURSE
  "CMakeFiles/reranker_comparison.dir/reranker_comparison.cpp.o"
  "CMakeFiles/reranker_comparison.dir/reranker_comparison.cpp.o.d"
  "reranker_comparison"
  "reranker_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reranker_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
