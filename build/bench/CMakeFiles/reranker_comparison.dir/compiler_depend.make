# Empty compiler generated dependencies file for reranker_comparison.
# This may be replaced when dependencies are built.
