# Empty dependencies file for fig6c_rerank_impact.
# This may be replaced when dependencies are built.
