file(REMOVE_RECURSE
  "CMakeFiles/fig6c_rerank_impact.dir/fig6c_rerank_impact.cpp.o"
  "CMakeFiles/fig6c_rerank_impact.dir/fig6c_rerank_impact.cpp.o.d"
  "fig6c_rerank_impact"
  "fig6c_rerank_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_rerank_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
