file(REMOVE_RECURSE
  "CMakeFiles/fig7_case_study_lsqr.dir/fig7_case_study_lsqr.cpp.o"
  "CMakeFiles/fig7_case_study_lsqr.dir/fig7_case_study_lsqr.cpp.o.d"
  "fig7_case_study_lsqr"
  "fig7_case_study_lsqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_case_study_lsqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
