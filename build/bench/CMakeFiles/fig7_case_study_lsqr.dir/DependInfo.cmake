
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_case_study_lsqr.cpp" "bench/CMakeFiles/fig7_case_study_lsqr.dir/fig7_case_study_lsqr.cpp.o" "gcc" "bench/CMakeFiles/fig7_case_study_lsqr.dir/fig7_case_study_lsqr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_vectordb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_lexical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_rerank.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_post.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_history.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_rag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_bots.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
