# Empty compiler generated dependencies file for micro_rerank.
# This may be replaced when dependencies are built.
