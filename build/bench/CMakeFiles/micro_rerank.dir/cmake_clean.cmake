file(REMOVE_RECURSE
  "CMakeFiles/micro_rerank.dir/micro_rerank.cpp.o"
  "CMakeFiles/micro_rerank.dir/micro_rerank.cpp.o.d"
  "micro_rerank"
  "micro_rerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
