# Empty dependencies file for model_embedding_sweep.
# This may be replaced when dependencies are built.
