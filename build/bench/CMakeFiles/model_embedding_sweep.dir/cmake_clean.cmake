file(REMOVE_RECURSE
  "CMakeFiles/model_embedding_sweep.dir/model_embedding_sweep.cpp.o"
  "CMakeFiles/model_embedding_sweep.dir/model_embedding_sweep.cpp.o.d"
  "model_embedding_sweep"
  "model_embedding_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_embedding_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
