# Empty dependencies file for ablation_k_l_sweep.
# This may be replaced when dependencies are built.
