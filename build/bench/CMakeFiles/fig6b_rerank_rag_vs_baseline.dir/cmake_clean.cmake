file(REMOVE_RECURSE
  "CMakeFiles/fig6b_rerank_rag_vs_baseline.dir/fig6b_rerank_rag_vs_baseline.cpp.o"
  "CMakeFiles/fig6b_rerank_rag_vs_baseline.dir/fig6b_rerank_rag_vs_baseline.cpp.o.d"
  "fig6b_rerank_rag_vs_baseline"
  "fig6b_rerank_rag_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_rerank_rag_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
