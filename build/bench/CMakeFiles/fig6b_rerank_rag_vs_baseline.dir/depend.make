# Empty dependencies file for fig6b_rerank_rag_vs_baseline.
# This may be replaced when dependencies are built.
