# Empty compiler generated dependencies file for kspburb_hallucination.
# This may be replaced when dependencies are built.
