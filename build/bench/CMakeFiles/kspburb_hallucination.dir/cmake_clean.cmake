file(REMOVE_RECURSE
  "CMakeFiles/kspburb_hallucination.dir/kspburb_hallucination.cpp.o"
  "CMakeFiles/kspburb_hallucination.dir/kspburb_hallucination.cpp.o.d"
  "kspburb_hallucination"
  "kspburb_hallucination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspburb_hallucination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
