# Empty compiler generated dependencies file for fig6a_rag_vs_baseline.
# This may be replaced when dependencies are built.
