# Empty dependencies file for ablation_archive_rag.
# This may be replaced when dependencies are built.
