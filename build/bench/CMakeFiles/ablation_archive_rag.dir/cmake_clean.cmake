file(REMOVE_RECURSE
  "CMakeFiles/ablation_archive_rag.dir/ablation_archive_rag.cpp.o"
  "CMakeFiles/ablation_archive_rag.dir/ablation_archive_rag.cpp.o.d"
  "ablation_archive_rag"
  "ablation_archive_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_archive_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
