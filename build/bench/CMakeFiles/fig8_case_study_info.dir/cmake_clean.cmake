file(REMOVE_RECURSE
  "CMakeFiles/fig8_case_study_info.dir/fig8_case_study_info.cpp.o"
  "CMakeFiles/fig8_case_study_info.dir/fig8_case_study_info.cpp.o.d"
  "fig8_case_study_info"
  "fig8_case_study_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_case_study_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
