file(REMOVE_RECURSE
  "CMakeFiles/micro_vectordb.dir/micro_vectordb.cpp.o"
  "CMakeFiles/micro_vectordb.dir/micro_vectordb.cpp.o.d"
  "micro_vectordb"
  "micro_vectordb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_vectordb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
