# Empty compiler generated dependencies file for micro_vectordb.
# This may be replaced when dependencies are built.
