file(REMOVE_RECURSE
  "CMakeFiles/micro_text.dir/micro_text.cpp.o"
  "CMakeFiles/micro_text.dir/micro_text.cpp.o.d"
  "micro_text"
  "micro_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
