# Empty compiler generated dependencies file for example_doc_assistant.
# This may be replaced when dependencies are built.
