file(REMOVE_RECURSE
  "CMakeFiles/example_doc_assistant.dir/doc_assistant.cpp.o"
  "CMakeFiles/example_doc_assistant.dir/doc_assistant.cpp.o.d"
  "example_doc_assistant"
  "example_doc_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_doc_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
