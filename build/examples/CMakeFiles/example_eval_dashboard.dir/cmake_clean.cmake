file(REMOVE_RECURSE
  "CMakeFiles/example_eval_dashboard.dir/eval_dashboard.cpp.o"
  "CMakeFiles/example_eval_dashboard.dir/eval_dashboard.cpp.o.d"
  "example_eval_dashboard"
  "example_eval_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_eval_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
