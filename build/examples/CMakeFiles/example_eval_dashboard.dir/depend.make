# Empty dependencies file for example_eval_dashboard.
# This may be replaced when dependencies are built.
