file(REMOVE_RECURSE
  "CMakeFiles/example_blind_review.dir/blind_review.cpp.o"
  "CMakeFiles/example_blind_review.dir/blind_review.cpp.o.d"
  "example_blind_review"
  "example_blind_review.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_blind_review.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
