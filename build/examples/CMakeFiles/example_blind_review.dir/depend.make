# Empty dependencies file for example_blind_review.
# This may be replaced when dependencies are built.
