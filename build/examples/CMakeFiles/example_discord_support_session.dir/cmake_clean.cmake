file(REMOVE_RECURSE
  "CMakeFiles/example_discord_support_session.dir/discord_support_session.cpp.o"
  "CMakeFiles/example_discord_support_session.dir/discord_support_session.cpp.o.d"
  "example_discord_support_session"
  "example_discord_support_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_discord_support_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
