# Empty compiler generated dependencies file for example_discord_support_session.
# This may be replaced when dependencies are built.
