# Empty dependencies file for example_pkb_cli.
# This may be replaced when dependencies are built.
