file(REMOVE_RECURSE
  "CMakeFiles/example_pkb_cli.dir/pkb_cli.cpp.o"
  "CMakeFiles/example_pkb_cli.dir/pkb_cli.cpp.o.d"
  "example_pkb_cli"
  "example_pkb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pkb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
