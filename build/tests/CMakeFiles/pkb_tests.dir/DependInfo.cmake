
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bots_test.cpp" "tests/CMakeFiles/pkb_tests.dir/bots_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/bots_test.cpp.o.d"
  "/root/repo/tests/corpus_test.cpp" "tests/CMakeFiles/pkb_tests.dir/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/embed_test.cpp" "tests/CMakeFiles/pkb_tests.dir/embed_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/embed_test.cpp.o.d"
  "/root/repo/tests/eval_test.cpp" "tests/CMakeFiles/pkb_tests.dir/eval_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/eval_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/pkb_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/history_test.cpp" "tests/CMakeFiles/pkb_tests.dir/history_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/history_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/pkb_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/json_test.cpp" "tests/CMakeFiles/pkb_tests.dir/json_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/lexical_test.cpp" "tests/CMakeFiles/pkb_tests.dir/lexical_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/lexical_test.cpp.o.d"
  "/root/repo/tests/llm_test.cpp" "tests/CMakeFiles/pkb_tests.dir/llm_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/llm_test.cpp.o.d"
  "/root/repo/tests/loader_test.cpp" "tests/CMakeFiles/pkb_tests.dir/loader_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/loader_test.cpp.o.d"
  "/root/repo/tests/markdown_test.cpp" "tests/CMakeFiles/pkb_tests.dir/markdown_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/markdown_test.cpp.o.d"
  "/root/repo/tests/post_test.cpp" "tests/CMakeFiles/pkb_tests.dir/post_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/post_test.cpp.o.d"
  "/root/repo/tests/rag_test.cpp" "tests/CMakeFiles/pkb_tests.dir/rag_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/rag_test.cpp.o.d"
  "/root/repo/tests/rerank_test.cpp" "tests/CMakeFiles/pkb_tests.dir/rerank_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/rerank_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/pkb_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/splitter_test.cpp" "tests/CMakeFiles/pkb_tests.dir/splitter_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/splitter_test.cpp.o.d"
  "/root/repo/tests/strings_test.cpp" "tests/CMakeFiles/pkb_tests.dir/strings_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/strings_test.cpp.o.d"
  "/root/repo/tests/tokenizer_test.cpp" "tests/CMakeFiles/pkb_tests.dir/tokenizer_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/tokenizer_test.cpp.o.d"
  "/root/repo/tests/util_misc_test.cpp" "tests/CMakeFiles/pkb_tests.dir/util_misc_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/util_misc_test.cpp.o.d"
  "/root/repo/tests/vectordb_test.cpp" "tests/CMakeFiles/pkb_tests.dir/vectordb_test.cpp.o" "gcc" "tests/CMakeFiles/pkb_tests.dir/vectordb_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pkb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_vectordb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_lexical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_rerank.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_post.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_history.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_rag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pkb_bots.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
