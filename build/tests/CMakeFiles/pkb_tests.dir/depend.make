# Empty dependencies file for pkb_tests.
# This may be replaced when dependencies are built.
