// Sharded scatter–gather bench: measures ShardRouter throughput and tail
// latency against the monolithic scan across a sweep of shard counts, and
// proves the partition-tolerance contract under a dead shard. Reports land
// in BENCH_shards.json.
//
// Per shard count, three steps run over the same seeded corpus and query
// pool:
//   equivalence — every sampled query's scatter (single and batched) must
//                 be bit-identical to VectorStore::similarity_search; any
//                 mismatch fails the run (exit nonzero);
//   clean       — closed-loop client threads hammer search(); QPS, p50/p99,
//                 partial rate (must be 0);
//   one_dead    — the last shard is killed; answers must keep flowing
//                 (answered rate 1.0 for shards > 1, tagged partial), which
//                 is the degrade-don't-fail acceptance gate.
//
// Usage: shard_scatter [--docs N] [--dim D] [--queries Q] [--threads T]
//                      [--k K] [--shards LIST] [--seed S] [--output PATH]
//   --shards  comma-separated shard counts to sweep (default 1,2,4,8)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/clock.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "vectordb/shard_router.h"
#include "vectordb/vector_store.h"

namespace {

using pkb::embed::Vector;
using pkb::vectordb::Scatter;
using pkb::vectordb::SearchResult;
using pkb::vectordb::ShardRouter;
using pkb::vectordb::VectorStore;

VectorStore random_store(std::size_t n, std::size_t dim, std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  VectorStore store;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    pkb::text::Document doc;
    doc.id = "doc-" + std::to_string(i);
    store.add(std::move(doc), std::move(v));
  }
  return store;
}

std::vector<Vector> random_queries(std::size_t n, std::size_t dim,
                                   std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  std::vector<Vector> queries;
  for (std::size_t q = 0; q < n; ++q) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    queries.push_back(std::move(v));
  }
  return queries;
}

bool hits_equal(const std::vector<SearchResult>& mono,
                const std::vector<SearchResult>& sharded) {
  if (mono.size() != sharded.size()) return false;
  for (std::size_t i = 0; i < mono.size(); ++i) {
    if (mono[i].index != sharded[i].index) return false;
    if (mono[i].score != sharded[i].score) return false;  // bit-identical
    if (sharded[i].doc == nullptr || mono[i].doc->id != sharded[i].doc->id) {
      return false;
    }
  }
  return true;
}

/// Single-query and batched scatters, checked against the monolithic scan.
bool check_equivalence(const VectorStore& store, const ShardRouter& router,
                       const std::vector<Vector>& pool, std::size_t k) {
  for (const Vector& q : pool) {
    const Scatter sc = router.search(q, k);
    if (sc.partial() || !hits_equal(store.similarity_search(q, k), sc.hits)) {
      return false;
    }
  }
  const auto mono = store.similarity_search_batch(pool, k);
  const auto scatters = router.search_batch(pool, k);
  for (std::size_t q = 0; q < pool.size(); ++q) {
    if (scatters[q].partial() || !hits_equal(mono[q], scatters[q].hits)) {
      return false;
    }
  }
  return true;
}

struct PhaseStats {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50 = 0.0, p99 = 0.0;
  double partial_rate = 0.0;
  double answered_rate = 0.0;  ///< scatters that returned any hits
};

PhaseStats run_phase(const ShardRouter& router,
                     const std::vector<Vector>& pool, std::size_t requests,
                     std::size_t threads, std::size_t k) {
  std::vector<pkb::util::Summary> latency(threads);
  std::vector<std::size_t> partial(threads, 0);
  std::vector<std::size_t> answered(threads, 0);

  pkb::util::Stopwatch wall;
  std::vector<std::thread> fleet;
  fleet.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    fleet.emplace_back([&, t] {
      for (std::size_t i = t; i < requests; i += threads) {
        pkb::util::Stopwatch per_request;
        const Scatter sc = router.search(pool[i % pool.size()], k);
        latency[t].add(per_request.seconds());
        if (sc.partial()) ++partial[t];
        if (!sc.hits.empty()) ++answered[t];
      }
    });
  }
  for (std::thread& t : fleet) t.join();

  PhaseStats r;
  r.wall_seconds = wall.seconds();
  r.qps = static_cast<double>(requests) / r.wall_seconds;
  pkb::util::Summary all;
  for (const pkb::util::Summary& s : latency) {
    for (double x : s.samples()) all.add(x);
  }
  r.p50 = all.percentile(50.0);
  r.p99 = all.percentile(99.0);
  std::size_t partial_total = 0, answered_total = 0;
  for (std::size_t p : partial) partial_total += p;
  for (std::size_t a : answered) answered_total += a;
  r.partial_rate =
      static_cast<double>(partial_total) / static_cast<double>(requests);
  r.answered_rate =
      static_cast<double>(answered_total) / static_cast<double>(requests);
  return r;
}

pkb::util::Json phase_json(const PhaseStats& r) {
  using pkb::util::Json;
  Json j = Json::object();
  j.set("wall_seconds", Json(r.wall_seconds));
  j.set("qps", Json(r.qps));
  j.set("p50_seconds", Json(r.p50));
  j.set("p99_seconds", Json(r.p99));
  j.set("partial_rate", Json(r.partial_rate));
  j.set("answered_rate", Json(r.answered_rate));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t docs = 20000;
  std::size_t dim = 64;
  std::size_t requests = 2000;
  std::size_t threads = 4;
  std::size_t k = 8;
  std::uint64_t seed = 42;
  std::string shard_list = "1,2,4,8";
  std::string output = "BENCH_shards.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--docs") == 0 && i + 1 < argc) {
      docs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--dim") == 0 && i + 1 < argc) {
      dim = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      requests =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      k = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_list = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: shard_scatter [--docs N] [--dim D] [--queries Q] "
                   "[--threads T] [--k K] [--shards LIST] [--seed S] "
                   "[--output PATH]\n");
      return 2;
    }
  }
  if (docs == 0) docs = 1;
  if (dim == 0) dim = 1;
  if (requests == 0) requests = 1;
  if (threads == 0) threads = 1;
  if (k == 0) k = 1;

  std::vector<std::size_t> shard_counts;
  for (std::size_t pos = 0; pos < shard_list.size();) {
    const std::size_t comma = shard_list.find(',', pos);
    const std::string tok = shard_list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t n =
        static_cast<std::size_t>(std::strtoull(tok.c_str(), nullptr, 10));
    if (n > 0) shard_counts.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (shard_counts.empty()) {
    std::fprintf(stderr, "shard_scatter: --shards produced no shard counts\n");
    return 2;
  }

  std::printf("shard scatter–gather: %zu docs x dim %zu, %zu requests, "
              "%zu client threads, k=%zu, seed %llu\n",
              docs, dim, requests, threads, k,
              static_cast<unsigned long long>(seed));

  const VectorStore store = random_store(docs, dim, seed);
  // A modest pool keeps the equivalence check cheap while the load phases
  // cycle through it for `requests` total searches.
  const std::vector<Vector> pool =
      random_queries(std::min<std::size_t>(64, requests), dim, seed + 1);

  using pkb::util::Json;
  Json results = Json::array();
  bool all_equivalent = true;
  bool degrade_gate_ok = true;

  for (const std::size_t shards : shard_counts) {
    const auto router = ShardRouter::partition(store, shards);

    const bool equivalent = check_equivalence(store, *router, pool, k);
    all_equivalent = all_equivalent && equivalent;

    const PhaseStats clean = run_phase(*router, pool, requests, threads, k);

    // Partition tolerance: kill the last shard, keep serving.
    router->kill_shard(shards - 1);
    const PhaseStats one_dead = run_phase(*router, pool, requests, threads, k);
    router->revive_shard(shards - 1);

    // With >= 2 shards every request must still be answered (partial); a
    // single-shard router losing its only shard has nothing left to serve.
    if (shards > 1 && one_dead.answered_rate < 1.0) degrade_gate_ok = false;

    std::printf("  shards=%-3zu %s | clean %9.0f QPS p99 %7.3f ms | "
                "one-dead %9.0f QPS p99 %7.3f ms partial %4.0f%% "
                "answered %4.0f%%\n",
                shards, equivalent ? "bit-identical" : "MISMATCH  ",
                clean.qps, clean.p99 * 1e3, one_dead.qps, one_dead.p99 * 1e3,
                one_dead.partial_rate * 100.0,
                one_dead.answered_rate * 100.0);

    Json entry = Json::object();
    entry.set("shards", Json(shards));
    entry.set("equivalent", Json(equivalent));
    entry.set("clean", phase_json(clean));
    entry.set("one_dead", phase_json(one_dead));
    results.push_back(std::move(entry));
  }

  Json config = Json::object();
  config.set("docs", Json(docs));
  config.set("dim", Json(dim));
  config.set("queries", Json(requests));
  config.set("threads", Json(threads));
  config.set("k", Json(k));
  config.set("seed", Json(static_cast<double>(seed)));
  config.set("query_pool", Json(pool.size()));
  Json report = Json::object();
  report.set("config", std::move(config));
  report.set("equivalent", Json(all_equivalent));
  report.set("results", std::move(results));

  std::ofstream out(output);
  out << report.dump(2) << "\n";
  std::printf("wrote %s\n", output.c_str());
  if (!out.good()) return 1;
  if (!all_equivalent) {
    std::fprintf(stderr,
                 "shard_scatter: equivalence gate FAILED — sharded results "
                 "diverge from the monolithic scan\n");
    return 1;
  }
  if (!degrade_gate_ok) {
    std::fprintf(stderr,
                 "shard_scatter: degrade gate FAILED — a dead shard dropped "
                 "answers instead of serving partials\n");
    return 1;
  }
  return 0;
}
