// Reproduces the §V-B reranker choice: "We have explored the NVIDIA
// reranker (commercial) and the Flashrank reranker (free)... Both rerankers
// yield a similar level of accuracy for our database. We selected Flashrank
// in this study because of its speed."
//
// Compares the two rerankers on (a) end-to-end benchmark accuracy and
// (b) rerank-stage wall time.
#include "bench_common.h"

#include "rerank/reranker.h"
#include "util/clock.h"

int main() {
  using namespace pkb;

  std::printf("=== Sec V-B: reranker comparison ===\n\n");
  std::printf("%-16s %-12s %-14s %-16s\n", "reranker", "mean score",
              "score==4 (of 37)", "stage time avg (ms)");

  double flash_time = 0.0;
  double cross_time = 0.0;
  for (const std::string& reranker : rerank::reranker_registry()) {
    bench::Setup s = bench::make_setup("sim-embed-3-large", "sim-gpt-4o",
                                       reranker);
    const eval::ArmReport report = s.runner().run(rag::PipelineArm::RagRerank);
    pkb::util::Summary stage_ms;
    for (const auto& outcome : report.outcomes) {
      stage_ms.add(outcome.rerank_seconds * 1e3);
    }
    std::printf("%-16s %-12.2f %-14zu %-16.3f\n", reranker.c_str(),
                report.scores.mean(), report.count_with_score(4),
                stage_ms.mean());
    if (reranker == "sim-flashrank") flash_time = stage_ms.mean();
    if (reranker == "sim-nv-cross") cross_time = stage_ms.mean();
  }
  if (flash_time > 0.0) {
    std::printf("\ncross-encoder reranker costs %.2fx the flashrank stage "
                "time\n", cross_time / flash_time);
  }
  std::printf("paper: similar accuracy; Flashrank selected for speed\n");
  return 0;
}
