// Reproduces Table II: run time for the RAG stage and for the LLM response
// over the 37-question benchmark (min / max / avg, in seconds).
//
// Paper (Intel i7-11700KF):
//                 RAG                  RAG+reranking
//   RAG time      0.16 / 3.11 / 0.44   0.48 / 5.71 / 1.05   (avg ~2.4x)
//   LLM response  2.74 / 16.47 / 9.56  2.28 / 15.62 / 9.63
//
// Our retrieval-stage numbers are REAL wall-clock measurements on this
// machine's corpus (absolute values differ from the paper's testbed — the
// shape to check is the rerank-stage multiplier and RAG <= 11% of LLM
// time). The LLM response time comes from SimLlm's calibrated token-rate
// latency model.
#include "bench_common.h"

#include "util/stats.h"

int main() {
  using namespace pkb;
  bench::Setup s = bench::make_setup();
  bench::print_header("Table II: RAG and LLM run time (seconds)", s);

  const eval::BenchmarkRunner runner = s.runner();
  const eval::ArmReport rag_arm = runner.run(rag::PipelineArm::Rag);
  const eval::ArmReport rerank = runner.run(rag::PipelineArm::RagRerank);

  std::printf("%-14s | %-24s | %-24s\n", "", "RAG (min/max/avg)",
              "RAG+reranking (min/max/avg)");
  std::printf("%-14s | %-24s | %-24s\n", "RAG time",
              rag_arm.rag_times.min_max_avg(4).c_str(),
              rerank.rag_times.min_max_avg(4).c_str());
  std::printf("%-14s | %-24s | %-24s\n", "LLM response",
              rag_arm.llm_times.min_max_avg(2).c_str(),
              rerank.llm_times.min_max_avg(2).c_str());

  const double mult = rag_arm.rag_times.mean() > 0
                          ? rerank.rag_times.mean() / rag_arm.rag_times.mean()
                          : 0.0;
  const double frac = rerank.llm_times.mean() > 0
                          ? rerank.rag_times.mean() / rerank.llm_times.mean()
                          : 0.0;
  std::printf("\nreranking multiplies the average RAG stage time by %.2fx "
              "(paper: ~2.4x)\n", mult);
  std::printf("rerank-RAG stage is %.2f%% of the average LLM response time "
              "(paper: <11%%)\n", frac * 100.0);
  return 0;
}
