// Reproduces Table II: run time for the RAG stage and for the LLM response
// over the 37-question benchmark (min / max / avg, in seconds).
//
// Paper (Intel i7-11700KF):
//                 RAG                  RAG+reranking
//   RAG time      0.16 / 3.11 / 0.44   0.48 / 5.71 / 1.05   (avg ~2.4x)
//   LLM response  2.74 / 16.47 / 9.56  2.28 / 15.62 / 9.63
//
// Our retrieval-stage numbers are REAL wall-clock measurements on this
// machine's corpus (absolute values differ from the paper's testbed — the
// shape to check is the rerank-stage multiplier and RAG <= 11% of LLM
// time). The LLM response time comes from SimLlm's calibrated token-rate
// latency model.
//
// The per-stage numbers are read from the obs metrics registry (see
// docs/OBSERVABILITY.md): the registry is reset before each arm, so after a
// run `pkb_retrieve_rag_seconds` holds exactly that arm's 37 retrieval
// samples and `pkb_llm_sim_latency_seconds{model=...}` the 37 simulated LLM
// latencies. Registry histograms track exact min/max/sum alongside the
// buckets, so the figures below are identical to the eval runner's own
// Summary-based aggregates (cross-checked at the bottom of main()).
//
// Usage: table2_latency [--export-metrics]
//   --export-metrics  additionally dump the registry (Prometheus text
//                     exposition format) for the RAG+reranking arm.
#include "bench_common.h"

#include <cmath>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/stats.h"
#include "util/strings.h"

namespace {

/// Render a registry histogram snapshot in the Table II "min / max / avg"
/// shape — same formatting as util::Summary::min_max_avg.
std::string min_max_avg(const pkb::obs::Histogram::Snapshot& snap,
                        int digits) {
  using pkb::util::format_double;
  return format_double(snap.count == 0 ? 0.0 : snap.min, digits) + " / " +
         format_double(snap.count == 0 ? 0.0 : snap.max, digits) + " / " +
         format_double(snap.mean(), digits);
}

struct ArmStats {
  pkb::obs::Histogram::Snapshot rag;
  pkb::obs::Histogram::Snapshot llm;
};

/// Run one arm with a clean registry and capture the stage histograms.
ArmStats run_arm(const pkb::eval::BenchmarkRunner& runner,
                 pkb::rag::PipelineArm arm, const std::string& model,
                 pkb::util::Summary* check_rag,
                 pkb::util::Summary* check_llm) {
  pkb::obs::MetricsRegistry& metrics = pkb::obs::global_metrics();
  metrics.reset();
  const pkb::eval::ArmReport report = runner.run(arm);
  *check_rag = report.rag_times;
  *check_llm = report.llm_times;
  ArmStats stats;
  stats.rag = metrics.histogram(pkb::obs::kRetrieveRagSeconds).snapshot();
  stats.llm =
      metrics.histogram(pkb::obs::kLlmSimLatencySeconds, {{"model", model}})
          .snapshot();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pkb;
  bool export_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--export-metrics") == 0) export_metrics = true;
  }

  bench::Setup s = bench::make_setup();
  bench::print_header("Table II: RAG and LLM run time (seconds)", s);

  const eval::BenchmarkRunner runner = s.runner();
  util::Summary rag_check_rag, rag_check_llm, rr_check_rag, rr_check_llm;
  const ArmStats rag_arm = run_arm(runner, rag::PipelineArm::Rag,
                                   s.model.name, &rag_check_rag,
                                   &rag_check_llm);
  const ArmStats rerank = run_arm(runner, rag::PipelineArm::RagRerank,
                                  s.model.name, &rr_check_rag, &rr_check_llm);

  std::printf("%-14s | %-24s | %-24s\n", "", "RAG (min/max/avg)",
              "RAG+reranking (min/max/avg)");
  std::printf("%-14s | %-24s | %-24s\n", "RAG time",
              min_max_avg(rag_arm.rag, 4).c_str(),
              min_max_avg(rerank.rag, 4).c_str());
  std::printf("%-14s | %-24s | %-24s\n", "LLM response",
              min_max_avg(rag_arm.llm, 2).c_str(),
              min_max_avg(rerank.llm, 2).c_str());

  const double mult = rag_arm.rag.mean() > 0
                          ? rerank.rag.mean() / rag_arm.rag.mean()
                          : 0.0;
  const double frac = rerank.llm.mean() > 0
                          ? rerank.rag.mean() / rerank.llm.mean()
                          : 0.0;
  std::printf("\nreranking multiplies the average RAG stage time by %.2fx "
              "(paper: ~2.4x)\n", mult);
  std::printf("rerank-RAG stage is %.2f%% of the average LLM response time "
              "(paper: <11%%)\n", frac * 100.0);

  // Cross-check: the registry histograms must agree with the eval runner's
  // own Summary aggregates — they observe the same stage timings.
  const double drift =
      std::fabs(rag_arm.rag.mean() - rag_check_rag.mean()) +
      std::fabs(rag_arm.llm.mean() - rag_check_llm.mean()) +
      std::fabs(rerank.rag.mean() - rr_check_rag.mean()) +
      std::fabs(rerank.llm.mean() - rr_check_llm.mean());
  if (drift > 1e-9 || rag_arm.rag.count != rag_check_rag.count() ||
      rerank.rag.count != rr_check_rag.count()) {
    std::printf("\nWARNING: registry disagrees with runner summaries "
                "(drift %.3g)\n", drift);
    return 1;
  }
  std::printf("registry cross-check: %zu+%zu samples, registry == runner "
              "summaries\n", rag_arm.rag.count, rerank.rag.count);

  if (export_metrics) {
    std::printf("\n--- metrics (RAG+reranking arm, Prometheus text) ---\n%s",
                obs::global_metrics().prometheus_text().c_str());
  }
  return 0;
}
