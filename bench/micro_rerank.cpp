// Micro-benchmarks of the rerankers: per-candidate-set cost of the
// lightweight FlashRanker vs the heavy cross-scoring reranker, for the
// paper's K=8 candidate sets.
#include <benchmark/benchmark.h>

#include "corpus/generator.h"
#include "rerank/cross_score.h"
#include "rerank/flashranker.h"
#include "text/loader.h"
#include "text/splitter.h"

namespace {

const std::vector<pkb::text::Document>& chunks() {
  static const auto* result = [] {
    const auto tree = pkb::corpus::generate_corpus();
    const pkb::text::MarkdownLoader loader(pkb::text::MarkdownMode::Single,
                                           /*drop_headings=*/true);
    const pkb::text::RecursiveCharacterTextSplitter splitter;
    return new std::vector<pkb::text::Document>(
        splitter.split_documents(loader.load(tree)));
  }();
  return *result;
}

std::vector<pkb::rerank::RerankCandidate> candidate_set(std::size_t k) {
  std::vector<pkb::rerank::RerankCandidate> cands;
  for (std::size_t i = 0; i < k && i < chunks().size(); ++i) {
    cands.push_back({&chunks()[i * 7 % chunks().size()], 0.5f});
  }
  return cands;
}

constexpr const char* kQuery =
    "Can I use KSP to solve a system where the matrix is not square, only "
    "rectangular?";

template <typename Ranker>
void run_rerank(benchmark::State& state) {
  Ranker ranker;
  ranker.fit(chunks());
  const auto cands = candidate_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto ranked = ranker.rerank(kQuery, cands, 4);
    benchmark::DoNotOptimize(ranked.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_FlashRanker(benchmark::State& state) {
  run_rerank<pkb::rerank::FlashRanker>(state);
}

void BM_CrossScoreReranker(benchmark::State& state) {
  run_rerank<pkb::rerank::CrossScoreReranker>(state);
}

}  // namespace

BENCHMARK(BM_FlashRanker)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_CrossScoreReranker)->Arg(8)->Arg(16)->Arg(32);

BENCHMARK_MAIN();
