// Reproduces Fig 6c: the impact of reranking — plain RAG vs
// reranking-enhanced RAG, question by question.
//
// Paper shape: reranking improves 11 questions with no degradation; two
// questions gain 3 full rubric points.
#include "bench_common.h"

int main() {
  using namespace pkb;
  bench::Setup s = bench::make_setup();
  bench::print_header("Fig 6c: impact of reranking on RAG", s);

  const eval::BenchmarkRunner runner = s.runner();
  const eval::ArmReport rag_arm = runner.run(rag::PipelineArm::Rag);
  const eval::ArmReport rerank = runner.run(rag::PipelineArm::RagRerank);

  std::printf("%s\n", eval::render_comparison_table(rag_arm, rerank).c_str());

  const eval::ArmComparison cmp = eval::compare_arms(rag_arm, rerank);
  std::size_t plus3 = 0;
  for (int d : cmp.deltas) {
    if (d >= 3) ++plus3;
  }
  std::printf("paper reports:     improved 11, degraded 0, two questions "
              "gained +3\n");
  std::printf("this reproduction: improved %zu, degraded %zu, %zu questions "
              "gained +3\n",
              cmp.improved, cmp.degraded, plus3);
  return 0;
}
