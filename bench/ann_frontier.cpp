// ANN frontier bench: sweeps {flat, IVF, HNSW} x {fp32, int8, pq} over
// their tuning knobs (nprobe for IVF, ef_search for HNSW) against one
// seeded corpus and reports recall@k vs latency vs throughput vs
// bytes/vector per operating point. Reports land in BENCH_ann.json.
//
// Gates make this a regression test, not just a chart:
//   flat_exact     — the flat/fp32 row must be bit-identical to
//                    VectorStore::similarity_search (single AND batched),
//                    and the flat/int8 row (quantized scan + exact re-rank)
//                    must reproduce the flat top-k bit-for-bit at the
//                    configured rerank factor;
//   default_recall — recall@k at the default operating point (HNSW with
//                    ef_search = 64, fp32 + int8) must be >= 0.95;
//   pq_recall      — PQ recall@k at its default operating points (flat_pq
//                    candidate scan and hnsw_pq at ef = 64) must be >= 0.90;
//   pq_memory      — every PQ point's measured scan bytes/vector must be
//                    <= 0.25x the fp32 row;
//   build_speedup  — the parallel SIMD IVF+PQ build (coarse k-means + sub
//                    codebooks + row encode) must be >= 2x faster than the
//                    single-thread scalar reference (kmeans_cluster_reference
//                    + PqCodebook::train_reference + PqCodes::encode_reference).
//                    Skipped (reported, not enforced) on the scalar backend
//                    or corpora under 5000 docs, where the comparison is
//                    noise.
// Any gate failure exits nonzero so bench_smoke.sh / CI catch kernel or
// index regressions.
//
// Usage: ann_frontier [--docs N] [--dim D] [--queries Q] [--k K]
//                     [--rerank R] [--ef LIST] [--nprobe LIST] [--seed S]
//                     [--build-only] [--output PATH]
//   --ef         comma-separated HNSW beam widths   (default 16,32,64,128)
//   --nprobe     comma-separated IVF probe counts   (default 1,2,4,8,16)
//   --build-only skip the query sweep; measure and gate only the IVF+PQ
//                build speedup (bench_smoke runs this at the tier where the
//                gate applies without paying for graph builds)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <cmath>

#include "util/clock.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "vectordb/hnsw.h"
#include "vectordb/index.h"
#include "vectordb/kernels.h"
#include "vectordb/kmeans.h"
#include "vectordb/pq.h"
#include "vectordb/vector_store.h"

namespace {

using pkb::embed::Vector;
using pkb::vectordb::SearchResult;
using pkb::vectordb::VectorStore;

VectorStore random_store(std::size_t n, std::size_t dim, std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  VectorStore store;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    pkb::text::Document doc;
    doc.id = "doc-" + std::to_string(i);
    store.add(std::move(doc), std::move(v));
  }
  return store;
}

std::vector<Vector> random_queries(std::size_t n, std::size_t dim,
                                   std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  std::vector<Vector> queries;
  for (std::size_t q = 0; q < n; ++q) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    queries.push_back(std::move(v));
  }
  return queries;
}

bool hits_equal(const std::vector<SearchResult>& a,
                const std::vector<SearchResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index) return false;
    if (a[i].score != b[i].score) return false;  // bit-identical
  }
  return true;
}

double recall_against(const std::vector<std::vector<SearchResult>>& truth,
                      const std::vector<std::vector<SearchResult>>& approx) {
  std::size_t found = 0, total = 0;
  for (std::size_t q = 0; q < truth.size(); ++q) {
    for (const SearchResult& e : truth[q]) {
      ++total;
      for (const SearchResult& a : approx[q]) {
        if (a.index == e.index) {
          ++found;
          break;
        }
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(found) / static_cast<double>(total);
}

/// One measured operating point of the frontier.
struct FrontierPoint {
  std::string index;   ///< "flat" | "ivf" | "hnsw"
  std::string quant;   ///< "fp32" | "int8" | "pq"
  std::size_t param;   ///< nprobe / ef_search; 0 for flat
  double recall = 0.0;
  double p50 = 0.0, p99 = 0.0;
  double qps = 0.0;
  double build_seconds = 0.0;
  std::size_t bytes = 0;  ///< scan bytes per vector (AnnIndex contract)
  std::vector<std::vector<SearchResult>> hits;  ///< per pool query
};

/// Closed-loop single-thread sweep of the query pool through `search`,
/// recording per-query latency and the hits for recall/exactness checks.
template <typename SearchFn>
FrontierPoint measure(std::string index, std::string quant, std::size_t param,
                      const std::vector<Vector>& pool, SearchFn&& search) {
  FrontierPoint pt;
  pt.index = std::move(index);
  pt.quant = std::move(quant);
  pt.param = param;
  pt.hits.reserve(pool.size());
  pkb::util::Summary latency;
  pkb::util::Stopwatch wall;
  for (const Vector& q : pool) {
    pkb::util::Stopwatch per_query;
    pt.hits.push_back(search(q));
    latency.add(per_query.seconds());
  }
  const double wall_seconds = wall.seconds();
  pt.p50 = latency.percentile(50.0);
  pt.p99 = latency.percentile(99.0);
  pt.qps = static_cast<double>(pool.size()) / wall_seconds;
  return pt;
}

pkb::util::Json point_json(const FrontierPoint& pt) {
  using pkb::util::Json;
  Json j = Json::object();
  j.set("index", Json(pt.index));
  j.set("quant", Json(pt.quant));
  j.set("param", Json(pt.param));
  j.set("recall_at_k", Json(pt.recall));
  j.set("p50_seconds", Json(pt.p50));
  j.set("p99_seconds", Json(pt.p99));
  j.set("qps", Json(pt.qps));
  j.set("build_seconds", Json(pt.build_seconds));
  j.set("bytes_per_vector", Json(pt.bytes));
  return j;
}

std::vector<std::size_t> parse_list(const std::string& list) {
  std::vector<std::size_t> out;
  for (std::size_t pos = 0; pos < list.size();) {
    const std::size_t comma = list.find(',', pos);
    const std::string tok = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t n =
        static_cast<std::size_t>(std::strtoull(tok.c_str(), nullptr, 10));
    if (n > 0) out.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t docs = 20000;
  std::size_t dim = 64;
  std::size_t queries = 200;
  std::size_t k = 10;
  std::size_t rerank = 4;
  std::uint64_t seed = 42;
  std::string ef_list = "16,32,64,128";
  std::string nprobe_list = "1,2,4,8,16";
  std::string output = "BENCH_ann.json";
  bool build_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--docs") == 0 && i + 1 < argc) {
      docs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--dim") == 0 && i + 1 < argc) {
      dim = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      k = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--rerank") == 0 && i + 1 < argc) {
      rerank = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--ef") == 0 && i + 1 < argc) {
      ef_list = argv[++i];
    } else if (std::strcmp(argv[i], "--nprobe") == 0 && i + 1 < argc) {
      nprobe_list = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "--build-only") == 0) {
      build_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: ann_frontier [--docs N] [--dim D] [--queries Q] "
                   "[--k K] [--rerank R] [--ef LIST] [--nprobe LIST] "
                   "[--seed S] [--build-only] [--output PATH]\n");
      return 2;
    }
  }
  if (docs == 0) docs = 1;
  if (dim == 0) dim = 1;
  if (queries == 0) queries = 1;
  if (k == 0) k = 1;
  if (rerank == 0) rerank = 1;

  const std::vector<std::size_t> efs = parse_list(ef_list);
  const std::vector<std::size_t> nprobes = parse_list(nprobe_list);
  if (efs.empty() || nprobes.empty()) {
    std::fprintf(stderr, "ann_frontier: empty --ef or --nprobe sweep\n");
    return 2;
  }

  const std::string backend(pkb::vectordb::kernels::backend_name());
  std::printf("ann frontier: %zu docs x dim %zu, %zu queries, k=%zu, "
              "rerank=%zu, seed %llu, kernels=%s\n",
              docs, dim, queries, k, rerank,
              static_cast<unsigned long long>(seed), backend.c_str());

  const VectorStore store = random_store(docs, dim, seed);
  const std::vector<Vector> pool = random_queries(queries, dim, seed + 1);

  using pkb::vectordb::AnnIndex;
  using pkb::vectordb::IndexKind;
  using pkb::vectordb::IndexSpec;
  using pkb::vectordb::Quantizer;

  const std::size_t fp32_bytes = store.packed().stride() * sizeof(float);

  // Build-speedup measurement (gate 5): the production IVF+PQ codebook
  // build (packed SIMD kernels + thread pool) vs the single-thread scalar
  // reference trainers on the same data and options. Enforced only where
  // the comparison means something: a SIMD backend and a non-tiny corpus.
  pkb::util::Stopwatch simd_build;
  pkb::vectordb::KmeansOptions ko;
  ko.k = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(docs))));
  ko.iters = 10;
  ko.seed = seed;
  ko.metric = pkb::vectordb::KmeansMetric::Cosine;
  const pkb::vectordb::KmeansResult km_simd =
      pkb::vectordb::kmeans_cluster(store.packed(), ko);
  pkb::vectordb::PqOptions pq_opts;
  pq_opts.seed = seed;
  const pkb::vectordb::PqCodebook book =
      pkb::vectordb::PqCodebook::train(store, pq_opts);
  const pkb::vectordb::PqCodes codes =
      pkb::vectordb::PqCodes::encode(store, book);
  const double simd_build_seconds = simd_build.seconds();

  pkb::util::Stopwatch ref_build;
  const pkb::vectordb::KmeansResult km_ref =
      pkb::vectordb::kmeans_cluster_reference(store.packed(), ko);
  const pkb::vectordb::PqCodebook book_ref =
      pkb::vectordb::PqCodebook::train_reference(store, pq_opts);
  const pkb::vectordb::PqCodes codes_ref =
      pkb::vectordb::PqCodes::encode_reference(store, book_ref);
  const double ref_build_seconds = ref_build.seconds();
  if (book_ref.m() != book.m() || codes_ref.rows() != codes.rows() ||
      km_ref.counts.size() != km_simd.counts.size()) {
    std::fprintf(stderr, "ann_frontier: reference build disagrees on shape\n");
    return 1;
  }
  const double build_speedup =
      simd_build_seconds > 0.0 ? ref_build_seconds / simd_build_seconds : 0.0;
  const bool build_gate_applies = backend != "scalar" && docs >= 5000;
  const bool build_speedup_ok = !build_gate_applies || build_speedup >= 2.0;
  std::printf(
      "  build: ivf+pq simd %.3f s | scalar reference %.3f s | %.2fx "
      "(clusters=%zu/%zu, pq m=%zu, codes=%zu rows)%s\n",
      simd_build_seconds, ref_build_seconds, build_speedup,
      km_simd.counts.size(), km_ref.counts.size(), book.m(), codes.rows(),
      build_gate_applies ? "" : " [gate skipped: tiny corpus or scalar]");

  using pkb::util::Json;
  Json build = Json::object();
  build.set("ivf_pq_simd_seconds", Json(simd_build_seconds));
  build.set("scalar_reference_seconds", Json(ref_build_seconds));
  build.set("speedup", Json(build_speedup));
  build.set("gate_applies", Json(build_gate_applies));

  if (build_only) {
    Json config = Json::object();
    config.set("docs", Json(docs));
    config.set("dim", Json(dim));
    config.set("seed", Json(static_cast<double>(seed)));
    config.set("backend", Json(backend));
    config.set("build_only", Json(true));
    Json gates = Json::object();
    gates.set("build_speedup", Json(build_speedup_ok));
    gates.set("ok", Json(build_speedup_ok));
    Json report = Json::object();
    report.set("config", std::move(config));
    report.set("gates", std::move(gates));
    report.set("build", std::move(build));
    std::ofstream out(output);
    out << report.dump(2) << "\n";
    std::printf("wrote %s\n", output.c_str());
    if (!out.good()) return 1;
    if (!build_speedup_ok) {
      std::fprintf(stderr,
                   "ann_frontier: build_speedup gate FAILED — parallel SIMD "
                   "IVF+PQ build only %.2fx the scalar reference (need >= "
                   "2x)\n",
                   build_speedup);
      return 1;
    }
    return 0;
  }

  std::vector<FrontierPoint> points;

  // flat / fp32 — the exact SIMD scan everything else is judged against.
  FrontierPoint flat_pt =
      measure("flat", "fp32", 0, pool,
              [&](const Vector& q) { return store.similarity_search(q, k); });
  flat_pt.recall = 1.0;  // ground truth by definition
  flat_pt.bytes = fp32_bytes;
  // Copy the truth set out: points grows below and would invalidate any
  // reference into it.
  const std::vector<std::vector<SearchResult>> truth = flat_pt.hits;
  points.push_back(std::move(flat_pt));

  // Gate 1a: the batched scan must be bit-identical to the single scan.
  bool flat_exact = true;
  const auto batched = store.similarity_search_batch(pool, k);
  for (std::size_t q = 0; q < pool.size(); ++q) {
    if (!hits_equal(truth[q], batched[q])) flat_exact = false;
  }

  // The sweep: every non-identity spec goes through build_index so the
  // bench exercises the exact objects the KB serves from.
  struct SpecPoint {
    IndexSpec spec;
    std::string index;
    std::string quant;
    std::size_t param;
  };
  const auto quant_name = [](Quantizer q) {
    switch (q) {
      case Quantizer::Int8:
        return "int8";
      case Quantizer::Pq:
        return "pq";
      default:
        return "fp32";
    }
  };
  std::vector<SpecPoint> sweep;
  for (const Quantizer quant : {Quantizer::Int8, Quantizer::Pq}) {
    IndexSpec s;
    s.kind = IndexKind::Flat;
    s.quant = quant;
    s.rerank_factor = rerank;
    s.pq.seed = seed;
    sweep.push_back({s, "flat", quant_name(quant), 0});
  }
  for (const Quantizer quant :
       {Quantizer::None, Quantizer::Int8, Quantizer::Pq}) {
    for (const std::size_t nprobe : nprobes) {
      IndexSpec s;
      s.kind = IndexKind::Ivf;
      s.quant = quant;
      s.rerank_factor = rerank;
      s.ivf.nprobe = nprobe;
      s.ivf.seed = seed;
      s.pq.seed = seed;
      sweep.push_back({s, "ivf", quant_name(quant), nprobe});
    }
    for (const std::size_t ef : efs) {
      IndexSpec s;
      s.kind = IndexKind::Hnsw;
      s.quant = quant;
      s.rerank_factor = rerank;
      s.hnsw.ef_search = ef;
      s.hnsw.seed = seed;
      s.pq.seed = seed;
      sweep.push_back({s, "hnsw", quant_name(quant), ef});
    }
  }

  // The swept knobs (ef_search, nprobe) are baked into the built object by
  // IndexSpec, so every point builds its own index — seeded builds keep the
  // sweep deterministic, and build_seconds lands in the report.
  for (const SpecPoint& sp : sweep) {
    pkb::util::Stopwatch build;
    const std::shared_ptr<const AnnIndex> index =
        pkb::vectordb::build_index(store, sp.spec);
    const double build_seconds = build.seconds();
    if (index == nullptr) {
      std::fprintf(stderr, "ann_frontier: build_index returned null for %s\n",
                   sp.spec.name().c_str());
      return 1;
    }
    FrontierPoint pt =
        measure(sp.index, sp.quant, sp.param, pool,
                [&](const Vector& q) { return index->search(q, k); });
    pt.build_seconds = build_seconds;
    pt.recall = recall_against(truth, pt.hits);
    pt.bytes = index->scan_bytes_per_vector();
    points.push_back(std::move(pt));
  }

  // Gate 1b: flat/int8 must reproduce the flat top-k bit-for-bit.
  for (const FrontierPoint& pt : points) {
    if (pt.index != "flat" || pt.quant != "int8") continue;
    for (std::size_t q = 0; q < pool.size(); ++q) {
      if (!hits_equal(truth[q], pt.hits[q])) flat_exact = false;
    }
  }

  // Gate 2: recall floor at the default operating point (hnsw, ef = 64 —
  // falls back to the largest swept ef when 64 is not in the sweep). PQ
  // cells have their own floor below.
  std::size_t default_ef = efs.back();
  for (const std::size_t ef : efs) {
    if (ef == 64) default_ef = 64;
  }
  bool default_recall_ok = true;
  for (const FrontierPoint& pt : points) {
    if (pt.index == "hnsw" && pt.quant != "pq" && pt.param == default_ef &&
        pt.recall < 0.95) {
      default_recall_ok = false;
    }
  }

  // Gate 3: PQ recall floor at its default operating points — the flat
  // ADC scan (pure candidate-generation quality at k x rerank survivors)
  // and hnsw_pq at the default ef.
  bool pq_recall_ok = true;
  for (const FrontierPoint& pt : points) {
    if (pt.quant != "pq") continue;
    const bool at_default = (pt.index == "flat") ||
                            (pt.index == "hnsw" && pt.param == default_ef);
    if (at_default && pt.recall < 0.90) pq_recall_ok = false;
  }

  // Gate 4: PQ memory — the measured scan footprint must be <= 0.25x the
  // fp32 row (it should be ~16x smaller; 4x is the int8 point).
  bool pq_memory_ok = true;
  for (const FrontierPoint& pt : points) {
    if (pt.quant == "pq" &&
        static_cast<double>(pt.bytes) >
            0.25 * static_cast<double>(fp32_bytes)) {
      pq_memory_ok = false;
    }
  }

  Json results = Json::array();
  for (const FrontierPoint& pt : points) {
    std::printf("  %-4s %-4s param=%-4zu recall@%zu %.3f | p50 %8.3f us "
                "p99 %8.3f us | %9.0f QPS\n",
                pt.index.c_str(), pt.quant.c_str(), pt.param, k, pt.recall,
                pt.p50 * 1e6, pt.p99 * 1e6, pt.qps);
    results.push_back(point_json(pt));
  }

  Json config = Json::object();
  config.set("docs", Json(docs));
  config.set("dim", Json(dim));
  config.set("queries", Json(queries));
  config.set("k", Json(k));
  config.set("rerank_factor", Json(rerank));
  config.set("seed", Json(static_cast<double>(seed)));
  config.set("backend", Json(backend));
  Json gates = Json::object();
  gates.set("flat_exact", Json(flat_exact));
  gates.set("default_recall", Json(default_recall_ok));
  gates.set("pq_recall", Json(pq_recall_ok));
  gates.set("pq_memory", Json(pq_memory_ok));
  gates.set("build_speedup", Json(build_speedup_ok));
  const bool all_ok = flat_exact && default_recall_ok && pq_recall_ok &&
                      pq_memory_ok && build_speedup_ok;
  gates.set("ok", Json(all_ok));
  Json report = Json::object();
  report.set("config", std::move(config));
  report.set("gates", std::move(gates));
  report.set("build", std::move(build));
  report.set("results", std::move(results));

  std::ofstream out(output);
  out << report.dump(2) << "\n";
  std::printf("wrote %s\n", output.c_str());
  if (!out.good()) return 1;
  if (!flat_exact) {
    std::fprintf(stderr,
                 "ann_frontier: exactness gate FAILED — flat/fp32 or the "
                 "int8 re-rank diverged from the exact scan\n");
    return 1;
  }
  if (!default_recall_ok) {
    std::fprintf(stderr,
                 "ann_frontier: recall gate FAILED — recall@%zu < 0.95 at "
                 "the default operating point (hnsw ef=%zu)\n",
                 k, default_ef);
    return 1;
  }
  if (!pq_recall_ok) {
    std::fprintf(stderr,
                 "ann_frontier: pq_recall gate FAILED — PQ recall@%zu < "
                 "0.90 at a default operating point (flat_pq / hnsw_pq "
                 "ef=%zu)\n",
                 k, default_ef);
    return 1;
  }
  if (!pq_memory_ok) {
    std::fprintf(stderr,
                 "ann_frontier: pq_memory gate FAILED — a PQ point scans "
                 "more than 0.25x the fp32 bytes/vector (%zu)\n",
                 fp32_bytes);
    return 1;
  }
  if (!build_speedup_ok) {
    std::fprintf(stderr,
                 "ann_frontier: build_speedup gate FAILED — parallel SIMD "
                 "IVF+PQ build only %.2fx the scalar reference (need >= "
                 "2x)\n",
                 build_speedup);
    return 1;
  }
  return 0;
}
