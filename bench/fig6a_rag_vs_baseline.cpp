// Reproduces Fig 6a: per-question rubric scores of the GPT-4o-analogue
// baseline (no retrieval) vs plain RAG over the 37-question Krylov
// benchmark.
//
// Paper shape: RAG improves the score of 20 questions and degrades 3.
#include "bench_common.h"

int main() {
  using namespace pkb;
  bench::Setup s = bench::make_setup();
  bench::print_header("Fig 6a: baseline vs RAG", s);

  const eval::BenchmarkRunner runner = s.runner();
  const eval::ArmReport baseline = runner.run(rag::PipelineArm::Baseline);
  const eval::ArmReport rag_arm = runner.run(rag::PipelineArm::Rag);

  std::printf("%s\n", eval::render_comparison_table(baseline, rag_arm).c_str());
  std::printf("%s\n", eval::render_score_distribution(baseline).c_str());
  std::printf("%s\n", eval::render_score_distribution(rag_arm).c_str());

  const eval::ArmComparison cmp = eval::compare_arms(baseline, rag_arm);
  std::printf("paper reports:    improved 20, degraded 3 (of 37)\n");
  std::printf("this reproduction: improved %zu, degraded %zu (of %zu)\n",
              cmp.improved, cmp.degraded, cmp.deltas.size());
  return 0;
}
