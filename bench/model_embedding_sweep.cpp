// Reproduces the §V-B model/embedding sweep: "We conducted experiments with
// several popular LLMs, including OpenAI's GPT-4 variants and Meta's Llama3
// variants, alongside various embedding models. Our analysis identified
// GPT-4o and text-embedding-3-large as providing the best overall
// performance."
//
// Runs the rerank-RAG arm for every (model, embedding) pair and prints the
// mean rubric score matrix. Shape target: the sim-gpt-4o +
// sim-embed-3-large cell wins (or ties for the win).
#include "bench_common.h"

int main() {
  using namespace pkb;
  const std::vector<std::string> models = llm::model_registry();
  const std::vector<std::string> embedders = {
      "sim-embed-3-large", "sim-embed-3-small", "sim-embed-ada",
      "sim-tfidf", "sim-charngram-512"};

  std::printf("=== Sec V-B sweep: mean rubric score, rerank-RAG arm ===\n\n");
  std::printf("%-18s", "model \\ embed");
  for (const auto& e : embedders) std::printf(" %18s", e.c_str());
  std::printf("\n");

  double best = -1.0;
  std::string best_pair;
  for (const auto& model : models) {
    std::printf("%-18s", model.c_str());
    for (const auto& embedder : embedders) {
      bench::Setup s = bench::make_setup(embedder, model);
      const eval::ArmReport report =
          s.runner().run(rag::PipelineArm::RagRerank);
      const double mean = report.scores.mean();
      std::printf(" %18.2f", mean);
      if (mean > best) {
        best = mean;
        best_pair = model + " + " + embedder;
      }
    }
    std::printf("\n");
  }
  std::printf("\nbest pair: %s (mean %.2f)\n", best_pair.c_str(), best);
  std::printf("paper: GPT-4o + text-embedding-3-large best overall\n");
  return 0;
}
