// Chaos serving bench: drives the concurrent serving layer through a
// deterministic injected-fault mix (transient LLM failures + reranker
// timeouts by default) and reports throughput, tail latency, and the
// degradation rate to BENCH_chaos.json.
//
// Two phases run over the same all-unique request stream:
//   clean — no fault plan attached (the resilience baseline);
//   chaos — the configured fault mix, with deadlines, retries, the LLM
//           circuit breaker, and the degradation ladder active.
//
// The bench doubles as an acceptance gate (the CI chaos-smoke stage): it
// exits nonzero when any request overdraws its deadline budget or when the
// answered rate (full or degraded answers with non-empty text) drops below
// 99%.
//
// Usage: chaos_serve [--workers N] [--requests R] [--seed S]
//                    [--llm-fault-rate F] [--rerank-timeout-rate F]
//                    [--deadline SECONDS] [--output PATH]
//   --llm-fault-rate       transient-failure probability per LLM call
//                          (default 0.10)
//   --rerank-timeout-rate  timeout probability per rerank call
//                          (default 0.05)
//   --deadline             virtual-seconds budget per request (default 120)
#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "resilience/fault_plan.h"
#include "resilience/resilience.h"
#include "serve/server.h"
#include "util/stats.h"

namespace {

using pkb::serve::Server;
using pkb::serve::ServerOptions;
namespace res = pkb::resilience;

// Same scale as serve_throughput: realizes simulated LLM latencies as
// ~5-35 ms real stalls so worker overlap (and degraded fast paths) show up
// in QPS.
constexpr double kLlmLatencyScale = 0.002;

struct PhaseResult {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50 = 0.0, p99 = 0.0;  // per-request seconds, real time
  std::size_t answered = 0;     ///< non-empty answer text
  Server::Stats stats;
  double budget_spent_max = 0.0;  ///< worst per-request virtual spend
  std::uint64_t budget_samples = 0;
};

PhaseResult run_load(const pkb::rag::AugmentedWorkflow& workflow,
                     ServerOptions opts,
                     const std::vector<std::string>& stream,
                     std::size_t clients) {
  pkb::obs::global_metrics().reset();
  Server server(workflow, opts);
  std::vector<pkb::util::Summary> per_client(clients);
  std::vector<std::size_t> answered(clients, 0);

  pkb::util::Stopwatch wall;
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      for (std::size_t i = c; i < stream.size(); i += clients) {
        pkb::util::Stopwatch per_request;
        const pkb::rag::WorkflowOutcome out = server.ask(stream[i]);
        per_client[c].add(per_request.seconds());
        if (!out.response.text.empty()) ++answered[c];
      }
    });
  }
  for (std::thread& t : fleet) t.join();

  PhaseResult r;
  r.wall_seconds = wall.seconds();
  r.qps = static_cast<double>(stream.size()) / r.wall_seconds;
  pkb::util::Summary all;
  for (const pkb::util::Summary& s : per_client) {
    for (double x : s.samples()) all.add(x);
  }
  r.p50 = all.percentile(50.0);
  r.p99 = all.percentile(99.0);
  for (std::size_t a : answered) r.answered += a;
  r.stats = server.stats();
  const auto spent = pkb::obs::global_metrics()
                         .histogram(pkb::obs::kResilienceBudgetSpentSeconds)
                         .snapshot();
  r.budget_spent_max = spent.max;
  r.budget_samples = spent.count;
  server.stop();
  return r;
}

pkb::util::Json phase_json(const PhaseResult& r, std::size_t requests) {
  using pkb::util::Json;
  Json j = Json::object();
  j.set("wall_seconds", Json(r.wall_seconds));
  j.set("qps", Json(r.qps));
  j.set("p50_seconds", Json(r.p50));
  j.set("p99_seconds", Json(r.p99));
  j.set("answered_rate",
        Json(static_cast<double>(r.answered) / static_cast<double>(requests)));
  j.set("degradation_rate",
        Json(static_cast<double>(r.stats.degraded) /
             static_cast<double>(requests)));
  j.set("degraded", Json(static_cast<double>(r.stats.degraded)));
  j.set("budget_spent_max_seconds", Json(r.budget_spent_max));
  return j;
}

void print_phase(const char* name, const PhaseResult& r,
                 std::size_t requests) {
  std::printf("  %-8s %7.1f QPS | p50 %6.1f ms | p99 %6.1f ms | "
              "answered %zu/%zu | degraded %llu | worst budget %5.1f s\n",
              name, r.qps, r.p50 * 1e3, r.p99 * 1e3, r.answered, requests,
              static_cast<unsigned long long>(r.stats.degraded),
              r.budget_spent_max);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 4;
  std::size_t requests = 160;
  std::uint64_t seed = 42;
  double llm_fault_rate = 0.10;
  double rerank_timeout_rate = 0.05;
  double deadline = 120.0;
  std::string output = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--llm-fault-rate") == 0 && i + 1 < argc) {
      llm_fault_rate = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--rerank-timeout-rate") == 0 &&
               i + 1 < argc) {
      rerank_timeout_rate = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
      deadline = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: chaos_serve [--workers N] [--requests R] "
                   "[--seed S] [--llm-fault-rate F] "
                   "[--rerank-timeout-rate F] [--deadline SECONDS] "
                   "[--output PATH]\n");
      return 2;
    }
  }
  if (workers == 0) workers = 1;
  if (requests == 0) requests = 1;

  const pkb::bench::Setup setup = pkb::bench::make_setup();
  pkb::bench::print_header("chaos serving (resilience under faults)", setup);
  pkb::rag::AugmentedWorkflow workflow(*setup.db,
                                       pkb::rag::PipelineArm::RagRerank,
                                       setup.model, setup.retriever);
  const auto& bench_qs = pkb::corpus::krylov_benchmark();
  const std::size_t clients = 2 * workers;

  std::vector<std::string> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    stream.push_back("chaos " + std::to_string(i) + ": " +
                     bench_qs[i % bench_qs.size()].question);
  }

  res::ResilienceOptions ropts;
  ropts.request_deadline_seconds = deadline;
  ropts.seed = seed;
  res::Resilience engine(ropts);

  ServerOptions opts;
  opts.workers = workers;
  opts.answer_cache_capacity = 0;  // all-unique stream: measure the pipeline
  opts.embedding_cache_capacity = 0;
  opts.llm_latency_scale = kLlmLatencyScale;
  opts.resilience = &engine;

  std::printf("%zu unique requests, %zu workers, %zu closed-loop clients, "
              "deadline %g s (virtual)\n",
              requests, workers, clients, deadline);

  // --- Phase 1: no faults. ---
  const PhaseResult clean = run_load(workflow, opts, stream, clients);
  print_phase("clean", clean, requests);

  // --- Phase 2: the configured fault mix. ---
  res::FaultPlanOptions fopts;
  fopts.seed = seed;
  fopts.llm.transient_rate = llm_fault_rate;
  fopts.rerank.timeout_rate = rerank_timeout_rate;
  res::FaultPlan plan(fopts);
  workflow.set_fault_plan(&plan);
  std::printf("fault mix: llm transient %.0f%%, rerank timeout %.0f%%\n",
              llm_fault_rate * 100.0, rerank_timeout_rate * 100.0);
  const PhaseResult chaos = run_load(workflow, opts, stream, clients);
  print_phase("chaos", chaos, requests);
  const auto llm_counts = plan.counts(res::Stage::Llm);
  const auto rerank_counts = plan.counts(res::Stage::Rerank);
  std::printf("  faults injected: %llu llm transient, %llu rerank timeout\n",
              static_cast<unsigned long long>(llm_counts.transient),
              static_cast<unsigned long long>(rerank_counts.timeout));

  // --- Acceptance gates. ---
  const double answered_rate =
      static_cast<double>(chaos.answered) / static_cast<double>(requests);
  const std::size_t deadline_violations =
      chaos.budget_spent_max > deadline + 1e-9 ? 1 : 0;
  std::printf("\nanswered rate %.1f%% (gate: >= 99%%) | worst budget spend "
              "%.1f s of %g s (gate: no overdraw)\n",
              answered_rate * 100.0, chaos.budget_spent_max, deadline);

  using pkb::util::Json;
  Json config = Json::object();
  config.set("workers", Json(static_cast<double>(workers)));
  config.set("requests", Json(static_cast<double>(requests)));
  config.set("clients", Json(static_cast<double>(clients)));
  config.set("seed", Json(static_cast<double>(seed)));
  config.set("llm_fault_rate", Json(llm_fault_rate));
  config.set("rerank_timeout_rate", Json(rerank_timeout_rate));
  config.set("deadline_seconds", Json(deadline));
  config.set("llm_latency_scale", Json(kLlmLatencyScale));
  Json faults = Json::object();
  faults.set("llm_transient", Json(static_cast<double>(llm_counts.transient)));
  faults.set("rerank_timeout",
             Json(static_cast<double>(rerank_counts.timeout)));
  Json report = Json::object();
  report.set("config", std::move(config));
  report.set("clean", phase_json(clean, requests));
  report.set("chaos", phase_json(chaos, requests));
  report.set("faults_injected", std::move(faults));
  report.set("answered_rate", Json(answered_rate));
  report.set("deadline_violations",
             Json(static_cast<double>(deadline_violations)));

  std::ofstream out(output);
  out << report.dump(2) << "\n";
  std::printf("wrote %s\n", output.c_str());
  if (!out.good()) return 1;
  if (deadline_violations > 0 || answered_rate < 0.99) {
    std::fprintf(stderr, "chaos_serve: service-level gate FAILED\n");
    return 1;
  }
  return 0;
}
