// Ablation of the §III-D first/second-pass sizes: the paper fixes K=8
// candidates refined to L=4 contexts. This sweep varies both and reports
// the mean rubric score of the rerank-RAG arm, showing where the paper's
// operating point sits.
#include "bench_common.h"

int main() {
  using namespace pkb;
  bench::Setup s = bench::make_setup();
  bench::print_header("Ablation: first-pass K and final L", s);

  const std::vector<std::size_t> ks = {4, 8, 16, 32};
  const std::vector<std::size_t> ls = {1, 2, 4, 8};

  std::printf("%-10s", "K \\ L");
  for (std::size_t l : ls) std::printf(" %8zu", l);
  std::printf("\n");

  for (std::size_t k : ks) {
    std::printf("%-10zu", k);
    for (std::size_t l : ls) {
      rag::RetrieverOptions opts = s.retriever;
      opts.first_pass_k = k;
      opts.final_l = l;
      const eval::BenchmarkRunner runner(*s.db, s.model, opts);
      const eval::ArmReport report = runner.run(rag::PipelineArm::RagRerank);
      std::printf(" %8.2f", report.scores.mean());
    }
    std::printf("\n");
  }
  std::printf("\npaper operating point: K=8, L=4\n");
  return 0;
}
