// Reproduces Fig 6b: baseline vs reranking-enhanced RAG.
//
// Paper shape: rerank-RAG improves 25 questions with NO degradation, and
// its final distribution is a perfect 4 on 33 of 37 questions with a 3 on
// the remaining four.
#include "bench_common.h"

int main() {
  using namespace pkb;
  bench::Setup s = bench::make_setup();
  bench::print_header("Fig 6b: baseline vs reranking-enhanced RAG", s);

  const eval::BenchmarkRunner runner = s.runner();
  const eval::ArmReport baseline = runner.run(rag::PipelineArm::Baseline);
  const eval::ArmReport rerank = runner.run(rag::PipelineArm::RagRerank);

  std::printf("%s\n", eval::render_comparison_table(baseline, rerank).c_str());
  std::printf("%s\n", eval::render_score_distribution(rerank).c_str());

  const eval::ArmComparison cmp = eval::compare_arms(baseline, rerank);
  std::printf("paper reports:     improved 25, degraded 0; 33 questions at "
              "4, 4 at 3, none below\n");
  std::printf("this reproduction: improved %zu, degraded %zu; %zu at 4, %zu "
              "at 3, %zu below 3\n",
              cmp.improved, cmp.degraded, rerank.count_with_score(4),
              rerank.count_with_score(3),
              rerank.outcomes.size() - rerank.count_with_score(4) -
                  rerank.count_with_score(3));
  return 0;
}
