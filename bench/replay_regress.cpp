// Replay regression gate: re-executes a committed trace corpus
// (tests/data/traces/) against a freshly built knowledge base and fails
// when any replay drifts from its recording without an explanation.
//
// Two passes per trace:
//  * from GenerateStage — only the deterministic simulated LLM runs, so the
//    answer must be bit-identical to the recording (`generate_exact` gate);
//  * from EmbedStage — the whole pipeline re-runs; with the same corpus
//    build the outcome must fully match (`full_match` gate). A diff with
//    recorded context ids missing from the live generation counts as
//    *explained* drift (corpus changed); anything else is unexplained and
//    fails the run.
//
// Also measures the recorder's sampling overhead (ask with trace capture +
// persist vs plain ask) — the number quoted in docs/PERFORMANCE.md.
//
// Usage: replay_regress [--traces DIR] [--output PATH] [--record]
//   --traces  trace corpus directory (default tests/data/traces)
//   --output  JSON report path (default BENCH_replay.json)
//   --record  (re)generate the corpus into --traces instead of replaying
#include "bench_common.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "replay/replay.h"
#include "replay/trace.h"
#include "util/clock.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using pkb::rag::StageKind;
using pkb::replay::ReplayOverrides;
using pkb::replay::ReplayResult;
using pkb::replay::TraceRecorder;

/// The corpus workload: a deterministic slice of the Krylov benchmark plus
/// the adversarial KSPBurb question.
std::vector<std::string> corpus_questions() {
  std::vector<std::string> questions;
  const auto& bench = pkb::corpus::krylov_benchmark();
  for (std::size_t i = 0; i < bench.size(); i += 6) {
    questions.push_back(bench[i].question);
  }
  questions.push_back(pkb::corpus::kspburb_question().question);
  return questions;
}

int record_corpus(const pkb::bench::Setup& setup, const std::string& dir) {
  const pkb::rag::AugmentedWorkflow workflow(
      *setup.db, pkb::rag::PipelineArm::RagRerank, setup.model,
      setup.retriever);
  pkb::replay::RecorderOptions opts;
  opts.dir = dir;
  TraceRecorder recorder(opts);
  for (const std::string& q : corpus_questions()) {
    pkb::rag::StageTrace trace;
    (void)workflow.ask(q, nullptr, &trace);
    const std::uint64_t id = recorder.record(std::move(trace));
    std::printf("recorded #%llu: %s\n", static_cast<unsigned long long>(id),
                q.c_str());
  }
  std::printf("%llu traces in %s\n",
              static_cast<unsigned long long>(recorder.recorded()),
              dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string traces_dir = "tests/data/traces";
  std::string output = "BENCH_replay.json";
  bool record = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--traces") == 0 && i + 1 < argc) {
      traces_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "--record") == 0) {
      record = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const pkb::bench::Setup setup = pkb::bench::make_setup();
  pkb::bench::print_header("replay regression", setup);
  if (record) return record_corpus(setup, traces_dir);

  const std::vector<std::uint64_t> ids = TraceRecorder::list(traces_dir);
  if (ids.empty()) {
    std::fprintf(stderr, "no traces in %s (run with --record first)\n",
                 traces_dir.c_str());
    return 2;
  }

  pkb::replay::ReplayEngine engine(*setup.db);
  std::size_t generate_exact = 0;
  std::size_t full_match = 0;
  std::size_t explained_diffs = 0;
  std::size_t unexplained_diffs = 0;
  double replay_seconds_total = 0.0;
  using pkb::util::Json;
  Json results = Json::array();

  for (const std::uint64_t id : ids) {
    const pkb::rag::StageTrace recorded =
        TraceRecorder::load(TraceRecorder::trace_path(traces_dir, id));

    // Pass 1: from Generate — deterministic model, bit-identical answer.
    pkb::util::Stopwatch gen_watch;
    ReplayOverrides from_generate;
    from_generate.from = StageKind::Generate;
    const ReplayResult gen = engine.replay(recorded, from_generate);
    const double gen_seconds = gen_watch.seconds();
    const bool gen_exact = !gen.diff.answer_changed && !gen.diff.mode_changed;
    if (gen_exact) ++generate_exact;

    // Pass 2: from Embed — the full pipeline against the live build.
    pkb::util::Stopwatch full_watch;
    ReplayOverrides from_embed;
    from_embed.from = StageKind::Embed;
    const ReplayResult full = engine.replay(recorded, from_embed);
    const double full_seconds = full_watch.seconds();
    replay_seconds_total += gen_seconds + full_seconds;
    const bool matched = !full.diff.any();
    if (matched) {
      ++full_match;
    } else if (!full.diff.unresolved_contexts.empty()) {
      ++explained_diffs;
    } else {
      ++unexplained_diffs;
      std::printf("UNEXPLAINED drift on trace #%llu:\n%s\n",
                  static_cast<unsigned long long>(id),
                  full.diff.summary().c_str());
    }

    std::printf("  #%03llu generate:%s full:%s  %s\n",
                static_cast<unsigned long long>(id),
                gen_exact ? "exact" : "DRIFT",
                matched ? "match" : "drift",
                pkb::util::ellipsize(recorded.question, 56).c_str());

    Json entry = Json::object();
    entry.set("id", Json(static_cast<double>(id)));
    entry.set("generate_exact", Json(gen_exact));
    entry.set("full_match", Json(matched));
    entry.set("unresolved_contexts",
              Json(static_cast<double>(full.diff.unresolved_contexts.size())));
    entry.set("generate_seconds", Json(gen_seconds));
    entry.set("full_seconds", Json(full_seconds));
    results.push_back(std::move(entry));
  }

  // Recorder overhead: same question asked with and without trace capture
  // + persist (sample_every = 1, the worst case). Quoted in PERFORMANCE.md.
  const pkb::rag::AugmentedWorkflow workflow(
      *setup.db, pkb::rag::PipelineArm::RagRerank, setup.model,
      setup.retriever);
  const std::string probe = pkb::corpus::krylov_benchmark().front().question;
  constexpr int kOverheadIters = 40;
  pkb::util::Stopwatch plain_watch;
  for (int i = 0; i < kOverheadIters; ++i) (void)workflow.ask(probe);
  const double plain_seconds = plain_watch.seconds() / kOverheadIters;
  pkb::replay::RecorderOptions rec_opts;
  rec_opts.dir = output + ".overhead_traces";
  TraceRecorder recorder(rec_opts);
  pkb::util::Stopwatch recorded_watch;
  for (int i = 0; i < kOverheadIters; ++i) {
    pkb::rag::StageTrace trace;
    (void)workflow.ask(probe, nullptr, &trace);
    (void)recorder.record(std::move(trace));
  }
  const double record_seconds = recorded_watch.seconds() / kOverheadIters;
  std::error_code ec;
  std::filesystem::remove_all(rec_opts.dir, ec);
  const double overhead_pct =
      plain_seconds > 0.0
          ? (record_seconds - plain_seconds) / plain_seconds * 100.0
          : 0.0;
  std::printf("\nrecorder overhead: plain %.3f ms, recorded %.3f ms "
              "(+%.1f%%)\n",
              plain_seconds * 1e3, record_seconds * 1e3, overhead_pct);

  const bool ok = generate_exact == ids.size() && unexplained_diffs == 0;
  std::printf("\n%zu traces: %zu generate-exact, %zu full-match, "
              "%zu explained, %zu UNEXPLAINED -> %s\n",
              ids.size(), generate_exact, full_match, explained_diffs,
              unexplained_diffs, ok ? "OK" : "FAIL");

  Json config = Json::object();
  config.set("traces_dir", Json(traces_dir));
  config.set("model", Json(setup.model.name));
  config.set("reranker", Json(setup.retriever.reranker));
  Json gates = Json::object();
  gates.set("generate_exact", Json(static_cast<double>(generate_exact)));
  gates.set("full_match", Json(static_cast<double>(full_match)));
  gates.set("explained_diffs", Json(static_cast<double>(explained_diffs)));
  gates.set("unexplained_diffs",
            Json(static_cast<double>(unexplained_diffs)));
  Json report = Json::object();
  report.set("config", std::move(config));
  report.set("traces", Json(static_cast<double>(ids.size())));
  report.set("results", std::move(results));
  report.set("gates", std::move(gates));
  report.set("replay_seconds_mean",
             Json(replay_seconds_total / (2.0 * ids.size())));
  report.set("record_seconds_mean", Json(record_seconds));
  report.set("record_overhead_pct", Json(overhead_pct));
  report.set("ok", Json(ok));

  std::ofstream out(output);
  out << report.dump(2) << "\n";
  std::printf("wrote %s\n", output.c_str());
  if (!out.good()) return 1;
  return ok ? 0 : 1;
}
