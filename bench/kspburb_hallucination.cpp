// Reproduces the §V-B KSPBurb demonstration: a fictitious solver name that
// follows the PETSc KSP naming convention.
//
// Paper: the mainstream LLM (Jan-2025 ChatGPT) fabricated "KSPBurb is ... a
// block version of the unpreconditioned Richardson iterative method ..."
// (scored 0/1); the RAG system answered "there's no PETSc function or
// object named KSPBurb" (correct).
#include "bench_common.h"

int main() {
  using namespace pkb;
  bench::Setup s = bench::make_setup();
  bench::print_header("KSPBurb hallucination demonstration (Sec V-B)", s);

  const corpus::BenchmarkQuestion& q = corpus::kspburb_question();
  std::printf("Question: %s\n\n", q.question.c_str());

  const rag::AugmentedWorkflow baseline(*s.db, rag::PipelineArm::Baseline,
                                        s.model, s.retriever);
  const rag::AugmentedWorkflow rerank(*s.db, rag::PipelineArm::RagRerank,
                                      s.model, s.retriever);

  const rag::WorkflowOutcome a = baseline.ask(q.question);
  const eval::RubricVerdict va = eval::score_answer(q, a.response.text);
  std::printf("--- mainstream LLM (no retrieval) ---\n%s\n", a.response.text.c_str());
  std::printf("score: (%d)  mode: %s\n", va.score, a.response.mode.c_str());
  if (!va.fabricated_symbols.empty()) {
    std::printf("fabricated symbols detected:");
    for (const auto& sym : va.fabricated_symbols) std::printf(" %s", sym.c_str());
    std::printf("\n");
  }

  const rag::WorkflowOutcome b = rerank.ask(q.question);
  const eval::RubricVerdict vb = eval::score_answer(q, b.response.text);
  std::printf("\n--- PETSc RAG system ---\n%s\n", b.response.text.c_str());
  std::printf("score: (%d)  mode: %s\n\n", vb.score, b.response.mode.c_str());

  std::printf("paper shape: baseline hallucinates (score 0/1); RAG says no "
              "such function exists (high score)\n");
  std::printf("reproduced:  baseline score %d (%s); RAG score %d (%s)\n",
              va.score, a.response.mode.c_str(), vb.score,
              b.response.mode.c_str());
  return 0;
}
