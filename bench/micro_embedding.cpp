// Micro-benchmarks of the embedding substrate: fit and per-query embedding
// throughput for every embedder family.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "corpus/generator.h"
#include "embed/embedder.h"
#include "text/loader.h"
#include "text/splitter.h"

namespace {

using pkb::embed::Embedder;

const std::vector<pkb::text::Document>& corpus_chunks() {
  static const auto* chunks = [] {
    const auto tree = pkb::corpus::generate_corpus();
    const pkb::text::MarkdownLoader loader(pkb::text::MarkdownMode::Single,
                                           /*drop_headings=*/true);
    const pkb::text::RecursiveCharacterTextSplitter splitter;
    return new std::vector<pkb::text::Document>(
        splitter.split_documents(loader.load(tree)));
  }();
  return *chunks;
}

const Embedder& fitted(const std::string& name) {
  static std::map<std::string, std::unique_ptr<Embedder>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    auto embedder = pkb::embed::make_embedder(name);
    embedder->fit(corpus_chunks());
    it = cache.emplace(name, std::move(embedder)).first;
  }
  return *it->second;
}

constexpr const char* kQuery =
    "Can I use KSP to solve a system where the matrix is not square, only "
    "rectangular?";

void BM_EmbedderFit(benchmark::State& state, const std::string& name) {
  const auto& chunks = corpus_chunks();
  for (auto _ : state) {
    auto embedder = pkb::embed::make_embedder(name);
    embedder->fit(chunks);
    benchmark::DoNotOptimize(embedder->dimension());
  }
  state.counters["chunks"] = static_cast<double>(chunks.size());
}

void BM_EmbedQuery(benchmark::State& state, const std::string& name) {
  const Embedder& embedder = fitted(name);
  for (auto _ : state) {
    auto vec = embedder.embed(kQuery);
    benchmark::DoNotOptimize(vec.data());
  }
  state.counters["dim"] = static_cast<double>(embedder.dimension());
}

void BM_EmbedBatch(benchmark::State& state, const std::string& name) {
  const Embedder& embedder = fitted(name);
  const auto& chunks = corpus_chunks();
  for (auto _ : state) {
    auto vecs = embedder.embed_batch(chunks);
    benchmark::DoNotOptimize(vecs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunks.size()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_EmbedderFit, tfidf, std::string("sim-tfidf"));
BENCHMARK_CAPTURE(BM_EmbedderFit, lsa32, std::string("sim-lsa-32"));
BENCHMARK_CAPTURE(BM_EmbedderFit, blend, std::string("sim-embed-3-large"));
BENCHMARK_CAPTURE(BM_EmbedQuery, tfidf, std::string("sim-tfidf"));
BENCHMARK_CAPTURE(BM_EmbedQuery, hash512, std::string("sim-hash-512"));
BENCHMARK_CAPTURE(BM_EmbedQuery, lsa32, std::string("sim-lsa-32"));
BENCHMARK_CAPTURE(BM_EmbedQuery, charngram, std::string("sim-charngram-512"));
BENCHMARK_CAPTURE(BM_EmbedQuery, blend, std::string("sim-embed-3-large"));
BENCHMARK_CAPTURE(BM_EmbedBatch, blend, std::string("sim-embed-3-large"));

BENCHMARK_MAIN();
