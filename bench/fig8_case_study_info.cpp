// Reproduces Fig 8 (Case Study 2): the matrix-preallocation diagnostics
// question.
//
// Paper: plain RAG hallucinated an imaginary runtime option; the
// reranking-enhanced RAG retrieved the paragraph
//   "As described above, the option -info will print information about the
//    success of preallocation during matrix assembly..."
// and answered correctly. Comparing the two arms' context windows showed
// only ONE common context.
#include "bench_common.h"

#include <set>

int main() {
  using namespace pkb;
  bench::Setup s = bench::make_setup();
  bench::print_header("Fig 8 / Case Study 2: preallocation diagnostics", s);

  const corpus::BenchmarkQuestion& q = corpus::krylov_benchmark()[2];  // Q3
  std::printf("Question: %s\n\n", q.question.c_str());

  const rag::AugmentedWorkflow rag_arm(*s.db, rag::PipelineArm::Rag, s.model,
                                       s.retriever);
  const rag::AugmentedWorkflow rerank_arm(*s.db, rag::PipelineArm::RagRerank,
                                          s.model, s.retriever);

  const rag::WorkflowOutcome a = rag_arm.ask(q.question);
  const rag::WorkflowOutcome b = rerank_arm.ask(q.question);

  auto window_of = [](const rag::WorkflowOutcome& outcome) {
    std::set<std::string> window;
    std::size_t i = 0;
    for (const auto& ctx : outcome.retrieval.contexts) {
      if (i++ == 4) break;
      window.insert(ctx.doc->id);
    }
    return window;
  };
  const std::set<std::string> wa = window_of(a);
  const std::set<std::string> wb = window_of(b);

  std::printf("--- LLM with RAG ---\nresponse: %s\nscore: (%d)\n\n",
              a.response.text.c_str(),
              eval::score_answer(q, a.response.text).score);
  std::printf("--- LLM with reranking-enhanced RAG ---\nresponse: %s\n"
              "score: (%d)\n\n",
              b.response.text.c_str(),
              eval::score_answer(q, b.response.text).score);

  std::size_t common = 0;
  std::printf("context windows:\n");
  for (const std::string& id : wa) {
    const bool shared = wb.contains(id);
    common += shared ? 1 : 0;
    std::printf("  rag:    %-46s %s\n", id.c_str(), shared ? "(common)" : "");
  }
  for (const std::string& id : wb) {
    if (!wa.contains(id)) std::printf("  rerank: %s\n", id.c_str());
  }
  std::printf("\npaper reports:     one common context, three distinct per "
              "arm\n");
  std::printf("this reproduction: %zu common context(s) of %zu per arm\n",
              common, wa.size());
  return 0;
}
