// Live-ingestion bench: what does publishing new knowledge-base generations
// cost the serving path? Writes BENCH_ingest.json.
//
// Phase A — steady state. A closed-loop client fleet drives unique
// questions through the server with no ingestion running: the QPS baseline.
//
// Phase B — ingestion under load. The same fleet replays the same stream
// while the main thread ingests --generations batches of --docs-per-gen
// documents through ingest::Ingestor, each publish hot-swapping the
// knowledge base under the running server. Readers pin snapshots, so the
// only serving-side cost of a swap is the pointer exchange itself; the QPS
// of this phase should stay within a few percent of phase A, and the swap
// critical section (Ingestor::swap_history) should be far under a
// millisecond even at p99.
//
// Usage: ingest_swap [--generations G] [--docs-per-gen D] [--workers N]
//                    [--requests R] [--seed S] [--output PATH]
//   --generations   knowledge-base generations to publish in phase B
//                   (default 8)
//   --docs-per-gen  documents per ingested batch (default 4)
//   --workers       server worker threads (default 4)
//   --requests      requests per phase (default 240)
//   --seed          workload/document RNG seed (default 42)
//   --output        JSON report path (default BENCH_ingest.json)
#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingestor.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using pkb::serve::Server;
using pkb::serve::ServerOptions;

// Same slice of simulated LLM latency realized as real stall time as
// bench/serve_throughput uses: the network-bound regime where worker
// overlap (and therefore any swap-induced stall) actually shows.
constexpr double kLlmLatencyScale = 0.002;

struct PhaseResult {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // per-request seconds
};

/// Closed-loop load against an already-running server: `clients` threads
/// split `stream` round-robin, timing every synchronous ask().
PhaseResult run_load(Server& server, const std::vector<std::string>& stream,
                     std::size_t clients) {
  std::vector<pkb::util::Summary> per_client(clients);
  pkb::util::Stopwatch wall;
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      for (std::size_t i = c; i < stream.size(); i += clients) {
        pkb::util::Stopwatch per_request;
        (void)server.ask(stream[i]);
        per_client[c].add(per_request.seconds());
      }
    });
  }
  for (std::thread& t : fleet) t.join();

  PhaseResult r;
  r.wall_seconds = wall.seconds();
  r.qps = static_cast<double>(stream.size()) / r.wall_seconds;
  pkb::util::Summary all;
  for (const pkb::util::Summary& s : per_client) {
    for (double x : s.samples()) all.add(x);
  }
  r.p50 = all.percentile(50.0);
  r.p95 = all.percentile(95.0);
  r.p99 = all.percentile(99.0);
  return r;
}

pkb::util::Json phase_json(const PhaseResult& r) {
  using pkb::util::Json;
  Json j = Json::object();
  j.set("wall_seconds", Json(r.wall_seconds));
  j.set("qps", Json(r.qps));
  j.set("p50_seconds", Json(r.p50));
  j.set("p95_seconds", Json(r.p95));
  j.set("p99_seconds", Json(r.p99));
  return j;
}

void print_phase(const char* name, const PhaseResult& r) {
  std::printf("  %-20s %7.1f QPS | p50 %6.1f ms | p95 %6.1f ms | "
              "p99 %6.1f ms\n",
              name, r.qps, r.p50 * 1e3, r.p95 * 1e3, r.p99 * 1e3);
}

/// One synthetic ingest batch: `docs` Markdown files of plausible solver
/// notes, deterministic in (seed, generation).
pkb::text::VirtualDir make_batch(std::uint64_t seed, int generation,
                                 int docs) {
  static const char* kTopics[] = {
      "restart tuning",       "preconditioner choice", "norm monitoring",
      "convergence stalls",   "matrix-free operators", "block solvers",
      "tolerance selection",  "scaling studies"};
  pkb::util::Rng rng(seed + static_cast<std::uint64_t>(generation) * 1009);
  pkb::text::VirtualDir batch;
  for (int d = 0; d < docs; ++d) {
    const char* topic = kTopics[rng.below(std::size(kTopics))];
    std::string body = "# Field notes " + std::to_string(generation) + "-" +
                       std::to_string(d) + ": " + topic + "\n\n";
    const int paragraphs = 3 + static_cast<int>(rng.below(3));
    for (int p = 0; p < paragraphs; ++p) {
      body += "Observation " + std::to_string(p) + " on " + topic +
              ": users combining KSPGMRES with PCJACOBI reported that "
              "adjusting the restart length and checking the true residual "
              "norm resolved the plateau seen at iteration " +
              std::to_string(10 + rng.below(90)) + ".\n\n";
    }
    batch.push_back({"fieldnotes/gen" + std::to_string(generation) + "-doc" +
                         std::to_string(d) + ".md",
                     std::move(body)});
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  int generations = 8;
  int docs_per_gen = 4;
  std::size_t workers = 4;
  std::size_t requests = 240;
  std::uint64_t seed = 42;
  std::string output = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--generations") == 0 && i + 1 < argc) {
      generations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--docs-per-gen") == 0 && i + 1 < argc) {
      docs_per_gen = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: ingest_swap [--generations G] [--docs-per-gen D] "
                   "[--workers N] [--requests R] [--seed S] [--output PATH]\n");
      return 2;
    }
  }
  if (generations < 1) generations = 1;
  if (docs_per_gen < 1) docs_per_gen = 1;
  if (workers == 0) workers = 1;
  if (requests == 0) requests = 1;

  pkb::bench::Setup setup = pkb::bench::make_setup();
  pkb::bench::print_header("ingestion hot-swap", setup);
  const pkb::rag::AugmentedWorkflow workflow(
      *setup.db, pkb::rag::PipelineArm::RagRerank, setup.model,
      setup.retriever);
  const auto& bench_qs = pkb::corpus::krylov_benchmark();
  const std::size_t clients = 2 * workers;

  std::vector<std::string> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    stream.push_back("variant " + std::to_string(i) + ": " +
                     bench_qs[i % bench_qs.size()].question);
  }

  ServerOptions opts;
  opts.workers = workers;
  opts.answer_cache_capacity = 0;  // measure the pipeline, not the cache
  opts.embedding_cache_capacity = 0;
  opts.llm_latency_scale = kLlmLatencyScale;
  Server server(workflow, opts);
  pkb::ingest::Ingestor ingestor(*setup.db);

  // --- Phase A: steady state, no ingestion. ---
  std::printf("phase A: %zu requests, %zu clients, %zu workers, no "
              "ingestion\n", requests, clients, workers);
  const PhaseResult steady = run_load(server, stream, clients);
  print_phase("steady state", steady);

  // --- Phase B: the same load while generations publish underneath. ---
  std::printf("\nphase B: same load while ingesting %d generations of %d "
              "docs\n", generations, docs_per_gen);
  const std::size_t chunks_before = setup.db->chunks().size();
  std::thread ingest_thread([&] {
    for (int g = 0; g < generations; ++g) {
      (void)ingestor.ingest_files(make_batch(seed, g, docs_per_gen));
    }
  });
  const PhaseResult under_ingest = run_load(server, stream, clients);
  ingest_thread.join();
  print_phase("during ingestion", under_ingest);
  const std::size_t chunks_after = setup.db->chunks().size();

  const std::vector<double> swaps = ingestor.swap_history();
  pkb::util::Summary swap_summary;
  for (double s : swaps) swap_summary.add(s);
  const double qps_ratio = under_ingest.qps / steady.qps;
  std::printf("\n  generations published: %zu (gen %llu, %zu -> %zu chunks, "
              "%llu refits)\n",
              swaps.size(),
              static_cast<unsigned long long>(setup.db->generation()),
              chunks_before, chunks_after,
              static_cast<unsigned long long>(ingestor.stats().refits));
  std::printf("  swap latency: p50 %.1f us | p99 %.1f us | max %.1f us\n",
              swap_summary.percentile(50.0) * 1e6,
              swap_summary.percentile(99.0) * 1e6,
              swap_summary.max() * 1e6);
  std::printf("  QPS during ingestion: %.1f%% of steady state\n\n",
              qps_ratio * 100.0);

  using pkb::util::Json;
  Json config = Json::object();
  config.set("generations", Json(static_cast<double>(generations)));
  config.set("docs_per_gen", Json(static_cast<double>(docs_per_gen)));
  config.set("workers", Json(static_cast<double>(workers)));
  config.set("clients", Json(static_cast<double>(clients)));
  config.set("requests", Json(static_cast<double>(requests)));
  config.set("seed", Json(static_cast<double>(seed)));
  config.set("llm_latency_scale", Json(kLlmLatencyScale));
  Json swap = Json::object();
  swap.set("count", Json(static_cast<double>(swaps.size())));
  swap.set("p50_seconds", Json(swap_summary.percentile(50.0)));
  swap.set("p99_seconds", Json(swap_summary.percentile(99.0)));
  swap.set("max_seconds", Json(swap_summary.max()));
  Json ingest = Json::object();
  ingest.set("chunks_before", Json(static_cast<double>(chunks_before)));
  ingest.set("chunks_after", Json(static_cast<double>(chunks_after)));
  ingest.set("refits",
             Json(static_cast<double>(ingestor.stats().refits)));
  ingest.set("final_generation",
             Json(static_cast<double>(setup.db->generation())));
  Json report = Json::object();
  report.set("config", std::move(config));
  report.set("steady_state", phase_json(steady));
  report.set("during_ingestion", phase_json(under_ingest));
  report.set("qps_ratio", Json(qps_ratio));
  report.set("swap", std::move(swap));
  report.set("ingest", std::move(ingest));

  std::ofstream out(output);
  out << report.dump(2) << "\n";
  std::printf("wrote %s\n", output.c_str());
  return out.good() ? 0 : 1;
}
