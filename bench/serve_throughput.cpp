// Serving-layer throughput bench: measures what the concurrent front end
// (src/serve/) buys over one-at-a-time serving, and writes the results to
// BENCH_serve.json.
//
// Phase A — worker scaling. A closed-loop client fleet drives all-unique
// questions (caches disabled) through a 1-worker and then an N-worker
// server. ServerOptions::llm_latency_scale realizes a slice of each
// response's *simulated* LLM latency as real wait time, modeling the
// network-bound LLM call of a deployment; overlapping those stalls is
// exactly what extra workers buy, so QPS should scale well even on one
// core (the CPU-bound pipeline stages still serialize).
//
// Phase B — answer caching. The same fleet replays a workload where ~50%
// of requests repeat a small hot set, against a cache-disabled and a
// cache-enabled server. Hits skip the whole pipeline including the
// latency stall, so the hit rate converts directly into QPS.
//
// Usage: serve_throughput [--workers N] [--requests R] [--seed S]
//                         [--output PATH]
//   --workers  worker threads for the scaled phases (default 8)
//   --requests requests per phase (default 240)
//   --seed     RNG seed for the phase-B workload mix (default 42)
//   --output   JSON report path (default BENCH_serve.json)
#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using pkb::serve::Server;
using pkb::serve::ServerOptions;

// Scale factor turning SimLlm's ~2.3-16.5 s simulated latencies into
// ~5-35 ms real stalls — long enough to dominate the single-worker run,
// short enough to keep the bench under ~15 s end to end.
constexpr double kLlmLatencyScale = 0.002;

struct PhaseResult {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // per-request seconds
  Server::Stats stats;
};

/// Closed-loop load: `clients` threads split `stream` round-robin, each
/// issuing synchronous ask() calls and timing every request.
PhaseResult run_load(const pkb::rag::AugmentedWorkflow& workflow,
                     ServerOptions opts,
                     const std::vector<std::string>& stream,
                     std::size_t clients) {
  Server server(workflow, opts);
  std::vector<pkb::util::Summary> per_client(clients);

  pkb::util::Stopwatch wall;
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      for (std::size_t i = c; i < stream.size(); i += clients) {
        pkb::util::Stopwatch per_request;
        (void)server.ask(stream[i]);
        per_client[c].add(per_request.seconds());
      }
    });
  }
  for (std::thread& t : fleet) t.join();

  PhaseResult r;
  r.wall_seconds = wall.seconds();
  r.qps = static_cast<double>(stream.size()) / r.wall_seconds;
  pkb::util::Summary all;
  for (const pkb::util::Summary& s : per_client) {
    for (double x : s.samples()) all.add(x);
  }
  r.p50 = all.percentile(50.0);
  r.p95 = all.percentile(95.0);
  r.p99 = all.percentile(99.0);
  r.stats = server.stats();
  server.stop();
  return r;
}

pkb::util::Json phase_json(const PhaseResult& r) {
  using pkb::util::Json;
  Json j = Json::object();
  j.set("wall_seconds", Json(r.wall_seconds));
  j.set("qps", Json(r.qps));
  j.set("p50_seconds", Json(r.p50));
  j.set("p95_seconds", Json(r.p95));
  j.set("p99_seconds", Json(r.p99));
  j.set("computed", Json(static_cast<double>(r.stats.computed)));
  j.set("answer_cache_hits",
        Json(static_cast<double>(r.stats.answer_cache.hits)));
  return j;
}

void print_phase(const char* name, const PhaseResult& r) {
  std::printf("  %-28s %7.1f QPS | p50 %6.1f ms | p95 %6.1f ms | "
              "p99 %6.1f ms | computed %llu | cache hits %llu\n",
              name, r.qps, r.p50 * 1e3, r.p95 * 1e3, r.p99 * 1e3,
              static_cast<unsigned long long>(r.stats.computed),
              static_cast<unsigned long long>(r.stats.answer_cache.hits));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 8;
  std::size_t requests = 240;
  std::uint64_t seed = 42;
  std::string output = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: serve_throughput [--workers N] [--requests R] "
                   "[--seed S] [--output PATH]\n");
      return 2;
    }
  }
  if (workers == 0) workers = 1;
  if (requests == 0) requests = 1;

  const pkb::bench::Setup setup = pkb::bench::make_setup();
  pkb::bench::print_header("serving-layer throughput", setup);
  const pkb::rag::AugmentedWorkflow workflow(
      *setup.db, pkb::rag::PipelineArm::RagRerank,
      setup.model, setup.retriever);
  const auto& bench_qs = pkb::corpus::krylov_benchmark();
  const std::size_t clients = 2 * workers;

  // --- Phase A: worker scaling over all-unique questions, caches off. ---
  std::vector<std::string> unique_stream;
  unique_stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    unique_stream.push_back("variant " + std::to_string(i) + ": " +
                            bench_qs[i % bench_qs.size()].question);
  }
  ServerOptions uncached;
  uncached.answer_cache_capacity = 0;
  uncached.embedding_cache_capacity = 0;
  uncached.llm_latency_scale = kLlmLatencyScale;

  std::printf("phase A: %zu unique requests, %zu closed-loop clients, "
              "llm_latency_scale=%g\n", requests, clients, kLlmLatencyScale);
  ServerOptions one_worker = uncached;
  one_worker.workers = 1;
  const PhaseResult serial = run_load(workflow, one_worker, unique_stream,
                                      clients);
  print_phase("1 worker", serial);
  ServerOptions n_workers = uncached;
  n_workers.workers = workers;
  const PhaseResult scaled = run_load(workflow, n_workers, unique_stream,
                                      clients);
  const std::string n_label = std::to_string(workers) + " workers";
  print_phase(n_label.c_str(), scaled);
  const double scaling_speedup = scaled.qps / serial.qps;
  std::printf("  scaling speedup: %.2fx\n\n", scaling_speedup);

  // --- Phase B: 50%-repeated workload, cache off vs on. ---
  constexpr std::size_t kHotSet = 10;
  pkb::util::Rng rng(seed);
  std::vector<std::string> mixed_stream;
  mixed_stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    if (i >= kHotSet && rng.uniform() < 0.5) {
      mixed_stream.push_back(
          mixed_stream[rng.below(kHotSet)]);  // repeat a hot question
    } else {
      mixed_stream.push_back("mixed " + std::to_string(i) + ": " +
                             bench_qs[i % bench_qs.size()].question);
    }
  }
  ServerOptions cache_off = uncached;
  cache_off.workers = workers;
  ServerOptions cache_on = cache_off;
  cache_on.answer_cache_capacity = 4096;
  cache_on.embedding_cache_capacity = 4096;

  std::printf("phase B: %zu requests, ~50%% drawn from a %zu-question hot "
              "set, %zu workers\n", requests, kHotSet, workers);
  const PhaseResult cold = run_load(workflow, cache_off, mixed_stream,
                                    clients);
  print_phase("answer cache off", cold);
  const PhaseResult warm = run_load(workflow, cache_on, mixed_stream,
                                    clients);
  print_phase("answer cache on", warm);
  const double cache_speedup = warm.qps / cold.qps;
  const double hit_rate =
      static_cast<double>(warm.stats.answer_cache.hits) /
      static_cast<double>(requests);
  std::printf("  cache speedup: %.2fx (hit rate %.0f%%)\n\n",
              cache_speedup, hit_rate * 100.0);

  using pkb::util::Json;
  Json config = Json::object();
  config.set("workers", Json(static_cast<double>(workers)));
  config.set("requests", Json(static_cast<double>(requests)));
  config.set("clients", Json(static_cast<double>(clients)));
  config.set("seed", Json(static_cast<double>(seed)));
  config.set("llm_latency_scale", Json(kLlmLatencyScale));
  Json scaling = Json::object();
  scaling.set("workers_1", phase_json(serial));
  scaling.set("workers_n", phase_json(scaled));
  scaling.set("speedup", Json(scaling_speedup));
  Json caching = Json::object();
  caching.set("cache_off", phase_json(cold));
  caching.set("cache_on", phase_json(warm));
  caching.set("speedup", Json(cache_speedup));
  caching.set("hit_rate", Json(hit_rate));
  Json report = Json::object();
  report.set("config", std::move(config));
  report.set("scaling", std::move(scaling));
  report.set("caching", std::move(caching));

  std::ofstream out(output);
  out << report.dump(2) << "\n";
  std::printf("wrote %s\n", output.c_str());
  return out.good() ? 0 : 1;
}
