// Micro-benchmarks of the vector hot path: packed-kernel scan scaling,
// int8 / HNSW / PQ search costs, the ADC and transposed training kernels in
// isolation, codebook build throughput, and store persistence.
#include <benchmark/benchmark.h>

#include <vector>

#include "embed/embedder.h"
#include "util/rng.h"
#include "vectordb/hnsw.h"
#include "vectordb/ivf.h"
#include "vectordb/kernels.h"
#include "vectordb/kmeans.h"
#include "vectordb/pq.h"
#include "vectordb/quantize.h"
#include "vectordb/vector_store.h"

namespace {

using pkb::embed::Vector;
using pkb::vectordb::HnswIndex;
using pkb::vectordb::HnswOptions;
using pkb::vectordb::Int8Codes;
using pkb::vectordb::IvfIndex;
using pkb::vectordb::IvfOptions;
using pkb::vectordb::PqCodebook;
using pkb::vectordb::PqCodes;
using pkb::vectordb::PqOptions;
using pkb::vectordb::VectorStore;
namespace kernels = pkb::vectordb::kernels;

VectorStore make_store(std::size_t n, std::size_t dim, std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  VectorStore store;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    pkb::text::Document doc;
    doc.id = "doc-" + std::to_string(i);
    store.add(std::move(doc), std::move(v));
  }
  return store;
}

Vector make_query(std::size_t dim, std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  Vector q(dim);
  for (float& x : q) x = static_cast<float>(rng.normal());
  return q;
}

// --- kernels in isolation --------------------------------------------------

// One packed-kernel pass over the whole matrix: the flat scan's inner loop.
void BM_KernelPackedScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 128;
  const VectorStore store = make_store(n, dim, 1);
  const kernels::PackedF32& packed = store.packed();
  pkb::util::AlignedBuffer qbuf(packed.stride() * sizeof(float));
  packed.pack_query(make_query(dim, 2).data(), qbuf.as<float>());
  std::vector<float> out(n);
  for (auto _ : state) {
    packed.score_range(qbuf.as<float>(), 0, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// ADC scan over PQ codes — the survivor-selection pass of pq_search.
void BM_KernelAdcScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 128;
  const VectorStore store = make_store(n, dim, 1);
  const PqCodebook book = PqCodebook::train(store, PqOptions{});
  const PqCodes codes = PqCodes::encode(store, book);
  Vector q = make_query(dim, 2);
  pkb::embed::l2_normalize(q);
  std::vector<float> lut(book.lut_size());
  book.build_lut(q.data(), lut.data());
  std::vector<float> out(n);
  for (auto _ : state) {
    kernels::adc_scores(lut.data(), codes.row(0), n, codes.m(),
                        codes.stride(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// Transposed assignment kernel at PQ sub-vector width — the codebook
// training hot loop (dim-2 slices against 256 centroids).
void BM_KernelNearestTrans(benchmark::State& state) {
  const std::size_t dim = 2;
  const std::size_t k = 256;
  pkb::util::Rng rng(3);
  std::vector<float> trans(dim * k);
  std::vector<float> adjust(k);
  std::vector<float> q(dim);
  for (float& x : trans) x = static_cast<float>(rng.normal());
  for (float& x : adjust) x = static_cast<float>(rng.normal());
  for (float& x : q) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::nearest_trans_f32(
        q.data(), trans.data(), dim, k, k, adjust.data()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}

// --- searches --------------------------------------------------------------

void BM_ExactTopK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 128;
  const VectorStore store = make_store(n, dim, 1);
  const Vector q = make_query(dim, 2);
  for (auto _ : state) {
    auto hits = store.similarity_search(q, 8);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_Int8TopK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 128;
  const VectorStore store = make_store(n, dim, 1);
  const Int8Codes codes = Int8Codes::build(store);
  const Vector q = make_query(dim, 2);
  for (auto _ : state) {
    auto hits = pkb::vectordb::quantized_search(store, codes, q, 8, 4);
    benchmark::DoNotOptimize(hits.data());
  }
}

void BM_PqTopK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 128;
  const VectorStore store = make_store(n, dim, 1);
  const PqCodebook book = PqCodebook::train(store, PqOptions{});
  const PqCodes codes = PqCodes::encode(store, book);
  const Vector q = make_query(dim, 2);
  for (auto _ : state) {
    auto hits = pkb::vectordb::pq_search(store, book, codes, q, 8, 4);
    benchmark::DoNotOptimize(hits.data());
  }
  state.counters["bytes/vec"] = static_cast<double>(codes.stride());
}

void BM_IvfTopK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nprobe = static_cast<std::size_t>(state.range(1));
  const std::size_t dim = 128;
  const VectorStore store = make_store(n, dim, 1);
  IvfOptions opts;
  opts.nprobe = nprobe;
  const IvfIndex index(store, opts);
  const Vector q = make_query(dim, 2);
  for (auto _ : state) {
    auto hits = index.search(q, 8);
    benchmark::DoNotOptimize(hits.data());
  }
  // Report the recall of this configuration alongside the speed.
  std::vector<Vector> queries;
  for (std::uint64_t seed = 10; seed < 26; ++seed) {
    queries.push_back(make_query(dim, seed));
  }
  state.counters["recall@8"] = index.recall_at_k(queries, 8);
  state.counters["clusters"] = static_cast<double>(index.cluster_count());
}

void BM_HnswTopK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ef = static_cast<std::size_t>(state.range(1));
  const std::size_t dim = 128;
  const VectorStore store = make_store(n, dim, 1);
  HnswOptions opts;
  opts.ef_search = ef;
  const HnswIndex index(store, opts);
  const Vector q = make_query(dim, 2);
  for (auto _ : state) {
    auto hits = index.search(q, 8);
    benchmark::DoNotOptimize(hits.data());
  }
  std::vector<Vector> queries;
  for (std::uint64_t seed = 10; seed < 26; ++seed) {
    queries.push_back(make_query(dim, seed));
  }
  state.counters["recall@8"] = index.recall_at_k(queries, 8);
}

// --- builds ----------------------------------------------------------------

// The SIMD + pool codebook trainer (IVF coarse geometry).
void BM_KmeansBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VectorStore store = make_store(n, 64, 1);
  pkb::vectordb::KmeansOptions opts;
  opts.k = 64;
  opts.iters = 5;
  for (auto _ : state) {
    auto res = pkb::vectordb::kmeans_cluster(store.packed(), opts);
    benchmark::DoNotOptimize(res.centroids.rows());
  }
}

// Full PQ build: m sub-quantizer codebooks + every row encoded.
void BM_PqBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VectorStore store = make_store(n, 64, 1);
  for (auto _ : state) {
    const PqCodebook book = PqCodebook::train(store, PqOptions{});
    const PqCodes codes = PqCodes::encode(store, book);
    benchmark::DoNotOptimize(codes.rows());
  }
}

void BM_StoreSaveLoad(benchmark::State& state) {
  const VectorStore store = make_store(2000, 128, 3);
  const std::string path = "/tmp/pkb_bench_store.bin";
  for (auto _ : state) {
    store.save(path);
    VectorStore loaded = VectorStore::load(path);
    benchmark::DoNotOptimize(loaded.size());
  }
}

}  // namespace

BENCHMARK(BM_KernelPackedScan)->Arg(4000)->Arg(16000);
BENCHMARK(BM_KernelAdcScan)->Arg(4000)->Arg(16000);
BENCHMARK(BM_KernelNearestTrans);
BENCHMARK(BM_ExactTopK)->Arg(1000)->Arg(4000)->Arg(16000)->Complexity();
BENCHMARK(BM_Int8TopK)->Arg(4000)->Arg(16000);
BENCHMARK(BM_PqTopK)->Arg(4000)->Arg(16000);
BENCHMARK(BM_IvfTopK)
    ->Args({4000, 1})
    ->Args({4000, 4})
    ->Args({4000, 16})
    ->Args({16000, 4});
BENCHMARK(BM_HnswTopK)->Args({4000, 32})->Args({16000, 32});
BENCHMARK(BM_KmeansBuild)->Arg(4000);
BENCHMARK(BM_PqBuild)->Arg(4000);
BENCHMARK(BM_StoreSaveLoad);

BENCHMARK_MAIN();
