// Micro-benchmarks of the vector store: exact search scaling with corpus
// size and the IVF speed/recall trade-off.
#include <benchmark/benchmark.h>

#include "embed/embedder.h"
#include "util/rng.h"
#include "vectordb/ivf.h"
#include "vectordb/vector_store.h"

namespace {

using pkb::embed::Vector;
using pkb::vectordb::IvfIndex;
using pkb::vectordb::IvfOptions;
using pkb::vectordb::VectorStore;

VectorStore make_store(std::size_t n, std::size_t dim, std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  VectorStore store;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    pkb::text::Document doc;
    doc.id = "doc-" + std::to_string(i);
    store.add(std::move(doc), std::move(v));
  }
  return store;
}

Vector make_query(std::size_t dim, std::uint64_t seed) {
  pkb::util::Rng rng(seed);
  Vector q(dim);
  for (float& x : q) x = static_cast<float>(rng.normal());
  return q;
}

void BM_ExactTopK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 128;
  const VectorStore store = make_store(n, dim, 1);
  const Vector q = make_query(dim, 2);
  for (auto _ : state) {
    auto hits = store.similarity_search(q, 8);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_IvfTopK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nprobe = static_cast<std::size_t>(state.range(1));
  const std::size_t dim = 128;
  const VectorStore store = make_store(n, dim, 1);
  IvfOptions opts;
  opts.nprobe = nprobe;
  const IvfIndex index(store, opts);
  const Vector q = make_query(dim, 2);
  for (auto _ : state) {
    auto hits = index.search(q, 8);
    benchmark::DoNotOptimize(hits.data());
  }
  // Report the recall of this configuration alongside the speed.
  std::vector<Vector> queries;
  for (std::uint64_t seed = 10; seed < 26; ++seed) {
    queries.push_back(make_query(dim, seed));
  }
  state.counters["recall@8"] = index.recall_at_k(queries, 8);
  state.counters["clusters"] = static_cast<double>(index.cluster_count());
}

void BM_StoreSaveLoad(benchmark::State& state) {
  const VectorStore store = make_store(2000, 128, 3);
  const std::string path = "/tmp/pkb_bench_store.bin";
  for (auto _ : state) {
    store.save(path);
    VectorStore loaded = VectorStore::load(path);
    benchmark::DoNotOptimize(loaded.size());
  }
}

}  // namespace

BENCHMARK(BM_ExactTopK)->Arg(1000)->Arg(4000)->Arg(16000)->Complexity();
BENCHMARK(BM_IvfTopK)
    ->Args({4000, 1})
    ->Args({4000, 4})
    ->Args({4000, 16})
    ->Args({16000, 4});
BENCHMARK(BM_StoreSaveLoad);

BENCHMARK_MAIN();
