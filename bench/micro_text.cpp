// Micro-benchmarks of the text substrate: Markdown parsing, splitting, and
// tokenization throughput over the generated corpus.
#include <benchmark/benchmark.h>

#include "corpus/generator.h"
#include "lexical/bm25.h"
#include "text/loader.h"
#include "text/markdown.h"
#include "text/splitter.h"
#include "text/tokenizer.h"

namespace {

const pkb::text::VirtualDir& corpus() {
  static const auto* tree =
      new pkb::text::VirtualDir(pkb::corpus::generate_corpus());
  return *tree;
}

std::size_t corpus_bytes() {
  std::size_t bytes = 0;
  for (const auto& file : corpus()) bytes += file.content.size();
  return bytes;
}

void BM_MarkdownParse(benchmark::State& state) {
  for (auto _ : state) {
    std::size_t blocks = 0;
    for (const auto& file : corpus()) {
      blocks += pkb::text::parse_markdown(file.content).size();
    }
    benchmark::DoNotOptimize(blocks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus_bytes()));
}

void BM_StripMarkdown(benchmark::State& state) {
  for (auto _ : state) {
    std::size_t total = 0;
    for (const auto& file : corpus()) {
      total += pkb::text::strip_markdown(file.content).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus_bytes()));
}

void BM_Splitter(benchmark::State& state) {
  const pkb::text::MarkdownLoader loader(pkb::text::MarkdownMode::Single,
                                         /*drop_headings=*/true);
  const auto docs = loader.load(corpus());
  pkb::text::SplitterOptions opts;
  opts.chunk_size = static_cast<std::size_t>(state.range(0));
  opts.chunk_overlap = opts.chunk_size / 7;
  const pkb::text::RecursiveCharacterTextSplitter splitter(opts);
  for (auto _ : state) {
    auto chunks = splitter.split_documents(docs);
    benchmark::DoNotOptimize(chunks.data());
    state.counters["chunks"] = static_cast<double>(chunks.size());
  }
}

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    std::size_t tokens = 0;
    for (const auto& file : corpus()) {
      tokens += pkb::text::tokens_of(file.content).size();
    }
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus_bytes()));
}

void BM_Bm25Build(benchmark::State& state) {
  const pkb::text::MarkdownLoader loader(pkb::text::MarkdownMode::Single,
                                         /*drop_headings=*/true);
  const pkb::text::RecursiveCharacterTextSplitter splitter;
  const auto chunks = splitter.split_documents(loader.load(corpus()));
  for (auto _ : state) {
    pkb::lexical::Bm25Index index;
    index.build(chunks);
    benchmark::DoNotOptimize(index.size());
  }
}

void BM_Bm25Search(benchmark::State& state) {
  const pkb::text::MarkdownLoader loader(pkb::text::MarkdownMode::Single,
                                         /*drop_headings=*/true);
  const pkb::text::RecursiveCharacterTextSplitter splitter;
  static pkb::lexical::Bm25Index index;
  static bool built = false;
  if (!built) {
    index.build(splitter.split_documents(loader.load(corpus())));
    built = true;
  }
  for (auto _ : state) {
    auto hits = index.search(
        "rectangular least squares matrix solver tolerance", 8);
    benchmark::DoNotOptimize(hits.data());
  }
}

}  // namespace

BENCHMARK(BM_MarkdownParse);
BENCHMARK(BM_StripMarkdown);
BENCHMARK(BM_Splitter)->Arg(200)->Arg(700)->Arg(2000);
BENCHMARK(BM_Tokenize);
BENCHMARK(BM_Bm25Build);
BENCHMARK(BM_Bm25Search);

BENCHMARK_MAIN();
