// Extension ablation (the paper's stated future work): add the petsc-users
// mailing-list archive to the RAG corpus and measure the effect on the
// 37-question benchmark.
//
// Paper: "In this study we targeted petsc-users but didn't touch its
// archives for RAG" and "We also want to incorporate additional information
// as part of PETSc-specific RAG." This bench quantifies that step: archive
// threads are informal restatements of manual facts in user phrasing, so
// they mainly add recall for terminology-mismatch questions — at the cost
// of more candidates competing for the attention window.
#include "bench_common.h"

int main() {
  using namespace pkb;

  std::printf("=== Ablation: mailing-list archive in the RAG corpus ===\n\n");
  std::printf("%-28s %10s %10s %10s %8s\n", "corpus", "baseline", "rag",
              "rag+rerank", "chunks");

  for (const bool with_archive : {false, true}) {
    corpus::CorpusOptions copts;
    copts.include_mailing_list_archive = with_archive;
    const text::VirtualDir tree = corpus::generate_corpus(copts);
    const rag::RagDatabase db = rag::RagDatabase::build(tree);
    const eval::BenchmarkRunner runner(db, llm::model_config("sim-gpt-4o"),
                                       rag::RetrieverOptions{});
    const double baseline =
        runner.run(rag::PipelineArm::Baseline).scores.mean();
    const double rag_mean = runner.run(rag::PipelineArm::Rag).scores.mean();
    const double rerank_mean =
        runner.run(rag::PipelineArm::RagRerank).scores.mean();
    std::printf("%-28s %10.2f %10.2f %10.2f %8zu\n",
                with_archive ? "docs + petsc-users archive" : "docs only",
                baseline, rag_mean, rerank_mean, db.chunks().size());
  }
  std::printf("\n(The baseline arm ignores the corpus; its column is a "
              "sanity check that only retrieval changes.)\n");
  return 0;
}
