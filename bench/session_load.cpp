// Session load bench: an OPEN-LOOP generator driving the multi-turn session
// serving layer (serve/session.h) with realistic arrival processes. Unlike
// the closed-loop serve benches — whose clients wait for each answer and so
// can never push the server past saturation — arrivals here follow a
// precomputed schedule regardless of completions, which is the only way to
// observe the overload knee and verify that admission control sheds load
// before tail latency collapses.
//
// Four arrival modes, all rates relative to a measured capacity estimate
// (a short closed-loop calibration phase):
//   steady   — Poisson at 0.6x capacity (healthy steady state);
//   bursty   — on/off process: session-affine bursts at 2x capacity
//              separated by quiet gaps (the coding-agent shape);
//   diurnal  — sinusoidally modulated Poisson (thinning), peak near
//              capacity (the daily ramp);
//   overload — a rung ladder at {0.5, 1, 2, 4, 8}x capacity, deliberately
//              past saturation, for the knee measurement.
//
// Reports sustained QPS, p50/p95/p99 of admitted turns, shed rate, and the
// overload knee (first rung where shed rate exceeds 1%) to
// BENCH_sessions.json, and doubles as the CI acceptance gate: it exits
// nonzero unless >= 99% of ADMITTED turns are answered, no turn overdraws
// its deadline budget, and shedding rises monotonically before p99
// collapses (every rung's admitted p99 stays under the bound).
//
// Usage: session_load [--lanes N] [--lane-queue C] [--sessions S]
//                     [--requests-per-mode R] [--overload-window SECONDS]
//                     [--mode all|steady,bursty,diurnal,overload]
//                     [--deadline SECONDS] [--p99-bound SECONDS]
//                     [--admission-deadline SECONDS] [--seed S]
//                     [--output PATH]
//
// --admission-deadline overrides the deadline-aware admission threshold
// (default p99-bound/2; 0 disables it). Disabling it while keeping a tight
// --p99-bound demonstrates the collapse the gate exists to catch: queues
// grow unboundedly, p99 blows past the bound, and the bench exits nonzero.
#include "bench_common.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "resilience/resilience.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/clock.h"
#include "util/json.h"
#include "util/stats.h"

namespace {

using pkb::serve::Admission;
using pkb::serve::Server;
using pkb::serve::ServerOptions;
using pkb::serve::SessionManager;
using pkb::serve::SessionOptions;
using pkb::serve::TurnOutcome;
namespace res = pkb::resilience;

// Same scale as the other serve benches: simulated LLM latencies become
// ~5-35 ms real stalls, so lanes have a real service time to saturate.
constexpr double kLlmLatencyScale = 0.002;

constexpr double kOverloadMultipliers[] = {0.5, 1.0, 2.0, 4.0, 8.0};
constexpr std::size_t kRungs =
    sizeof(kOverloadMultipliers) / sizeof(kOverloadMultipliers[0]);
/// A rung sheds "at the knee" once more than 1% of its offered load is
/// rejected.
constexpr double kKneeShedRate = 0.01;
/// Slack for the monotone shed-before-collapse check (rates are measured
/// over finite windows).
constexpr double kMonotoneTolerance = 0.02;

struct Arrival {
  double at = 0.0;  ///< seconds from mode start
  std::string session;
  std::string question;
  int rung = -1;  ///< overload rung index; -1 outside overload mode
};

/// Rotating session pool: most arrivals continue an existing session, a
/// tenth start a brand-new one (displacing a pool slot), so admission
/// control sees a realistic mix of in-flight and new sessions.
class SessionPicker {
 public:
  SessionPicker(std::mt19937_64& rng, std::size_t pool_size)
      : rng_(rng), pool_(pool_size == 0 ? 1 : pool_size) {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      pool_[i] = "s" + std::to_string(i);
    }
  }
  std::string pick() {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(rng_) < 0.1) {
      std::string fresh = "fresh-" + std::to_string(fresh_counter_++);
      pool_[rng_() % pool_.size()] = fresh;
      return fresh;
    }
    return pool_[rng_() % pool_.size()];
  }

 private:
  std::mt19937_64& rng_;
  std::vector<std::string> pool_;
  std::uint64_t fresh_counter_ = 0;
};

std::string question_text(std::size_t i) {
  const auto& qs = pkb::corpus::krylov_benchmark();
  return "turn " + std::to_string(i) + ": " + qs[i % qs.size()].question;
}

std::vector<Arrival> gen_steady(std::mt19937_64& rng, SessionPicker& pick,
                                double capacity_qps, std::size_t count) {
  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  std::exponential_distribution<double> gap(0.6 * capacity_qps);
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += gap(rng);
    arrivals.push_back({t, pick.pick(), question_text(i), -1});
  }
  return arrivals;
}

std::vector<Arrival> gen_bursty(std::mt19937_64& rng, SessionPicker& pick,
                                double capacity_qps, std::size_t count) {
  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  std::exponential_distribution<double> burst_len(1.0 / 0.35);
  std::exponential_distribution<double> quiet_len(1.0 / 0.35);
  std::exponential_distribution<double> gap(2.0 * capacity_qps);
  double t = 0.0;
  while (arrivals.size() < count) {
    // One ON burst, all turns from the same session: the agent shape.
    const std::string session = pick.pick();
    const double burst_end = t + burst_len(rng);
    while (arrivals.size() < count) {
      t += gap(rng);
      if (t >= burst_end) break;
      arrivals.push_back({t, session, question_text(arrivals.size()), -1});
    }
    t = burst_end + quiet_len(rng);
  }
  return arrivals;
}

std::vector<Arrival> gen_diurnal(std::mt19937_64& rng, SessionPicker& pick,
                                 double capacity_qps, std::size_t count) {
  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  // Thinning against the peak rate; two full "days" over the run.
  const double lambda_max = 0.95 * capacity_qps;
  const double expected_duration =
      static_cast<double>(count) / (0.55 * capacity_qps);
  const double period = expected_duration / 2.0;
  std::exponential_distribution<double> gap(lambda_max);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double t = 0.0;
  while (arrivals.size() < count) {
    t += gap(rng);
    const double lambda =
        capacity_qps *
        (0.55 + 0.4 * std::sin(2.0 * 3.14159265358979323846 * t / period));
    if (u(rng) * lambda_max < lambda) {
      arrivals.push_back({t, pick.pick(), question_text(arrivals.size()), -1});
    }
  }
  return arrivals;
}

std::vector<Arrival> gen_overload(std::mt19937_64& rng, SessionPicker& pick,
                                  double capacity_qps,
                                  double window_seconds) {
  std::vector<Arrival> arrivals;
  double t0 = 0.0;
  for (std::size_t r = 0; r < kRungs; ++r) {
    const double rate = kOverloadMultipliers[r] * capacity_qps;
    std::exponential_distribution<double> gap(rate);
    double t = t0;
    while (true) {
      t += gap(rng);
      if (t >= t0 + window_seconds) break;
      arrivals.push_back({t, pick.pick(), question_text(arrivals.size()),
                          static_cast<int>(r)});
    }
    t0 += window_seconds;
  }
  return arrivals;
}

struct RungResult {
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  double shed_rate = 0.0;
  double p99 = 0.0;
};

struct ModeResult {
  std::string mode;
  double offered_qps = 0.0;
  double sustained_qps = 0.0;
  double wall_seconds = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  std::size_t total = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t answered = 0;  ///< admitted turns with non-empty text
  double shed_rate = 0.0;
  double answered_rate = 1.0;
  double budget_spent_max = 0.0;
  SessionManager::Stats stats;
  std::vector<RungResult> rungs;
};

/// Run one mode's arrival schedule open-loop against a fresh server +
/// session manager (fresh metrics too, so the budget histogram is
/// per-mode).
ModeResult run_mode(const char* name,
                    const pkb::rag::AugmentedWorkflow& workflow,
                    res::Resilience& engine, const SessionOptions& mopts,
                    const std::vector<Arrival>& arrivals) {
  pkb::obs::global_metrics().reset();
  ServerOptions sopts;
  sopts.workers = 1;  // session turns run on the manager's lanes
  sopts.queue_capacity = 1;
  sopts.answer_cache_capacity = 0;  // session prompts are state-dependent
  sopts.llm_latency_scale = kLlmLatencyScale;
  sopts.resilience = &engine;
  Server server(workflow, sopts);
  SessionManager manager(server, mopts);

  std::vector<std::pair<std::future<TurnOutcome>, int>> futures;
  futures.reserve(arrivals.size());
  pkb::util::Stopwatch wall;
  for (const Arrival& a : arrivals) {
    const double now = wall.seconds();
    if (a.at > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(a.at - now));
    }
    futures.emplace_back(manager.submit(a.session, a.question), a.rung);
  }

  ModeResult r;
  r.mode = name;
  r.total = arrivals.size();
  pkb::util::Summary latencies;
  std::vector<pkb::util::Summary> rung_latencies(kRungs);
  std::vector<RungResult> rungs(kRungs);
  for (auto& [future, rung] : futures) {
    const TurnOutcome out = future.get();
    const bool answered = !out.outcome.response.text.empty();
    if (out.shed()) {
      ++r.shed;
    } else {
      ++r.admitted;
      if (answered) ++r.answered;
      latencies.add(out.turn_seconds);
    }
    if (rung >= 0) {
      RungResult& rr = rungs[static_cast<std::size_t>(rung)];
      ++rr.arrivals;
      if (out.shed()) {
        ++rr.shed;
      } else {
        ++rr.admitted;
        rung_latencies[static_cast<std::size_t>(rung)].add(out.turn_seconds);
      }
    }
  }
  r.wall_seconds = wall.seconds();
  r.offered_qps = arrivals.empty()
                      ? 0.0
                      : static_cast<double>(arrivals.size()) /
                            arrivals.back().at;
  r.sustained_qps = static_cast<double>(r.admitted) / r.wall_seconds;
  r.p50 = latencies.percentile(50.0);
  r.p95 = latencies.percentile(95.0);
  r.p99 = latencies.percentile(99.0);
  r.shed_rate = r.total == 0
                    ? 0.0
                    : static_cast<double>(r.shed) /
                          static_cast<double>(r.total);
  r.answered_rate = r.admitted == 0
                        ? 1.0
                        : static_cast<double>(r.answered) /
                              static_cast<double>(r.admitted);
  r.budget_spent_max = pkb::obs::global_metrics()
                           .histogram(pkb::obs::kResilienceBudgetSpentSeconds)
                           .snapshot()
                           .max;
  r.stats = manager.stats();
  if (!arrivals.empty() && arrivals.front().rung >= 0) {
    for (std::size_t i = 0; i < kRungs; ++i) {
      RungResult& rr = rungs[i];
      rr.shed_rate = rr.arrivals == 0
                         ? 0.0
                         : static_cast<double>(rr.shed) /
                               static_cast<double>(rr.arrivals);
      rr.p99 = rung_latencies[i].percentile(99.0);
      r.rungs.push_back(rr);
    }
  }
  manager.stop();
  server.stop();
  return r;
}

void print_mode(const ModeResult& r) {
  std::printf("  %-8s offered %7.1f QPS | sustained %7.1f | p50 %6.1f ms | "
              "p99 %6.1f ms | shed %5.1f%% | answered %5.1f%%\n",
              r.mode.c_str(), r.offered_qps, r.sustained_qps, r.p50 * 1e3,
              r.p99 * 1e3, r.shed_rate * 100.0, r.answered_rate * 100.0);
}

pkb::util::Json mode_json(const ModeResult& r) {
  using pkb::util::Json;
  Json j = Json::object();
  j.set("mode", Json(r.mode));
  j.set("offered_qps", Json(r.offered_qps));
  j.set("sustained_qps", Json(r.sustained_qps));
  j.set("wall_seconds", Json(r.wall_seconds));
  j.set("p50_seconds", Json(r.p50));
  j.set("p95_seconds", Json(r.p95));
  j.set("p99_seconds", Json(r.p99));
  j.set("arrivals", Json(static_cast<double>(r.total)));
  j.set("admitted", Json(static_cast<double>(r.admitted)));
  j.set("shed", Json(static_cast<double>(r.shed)));
  j.set("shed_rate", Json(r.shed_rate));
  j.set("answered_rate", Json(r.answered_rate));
  j.set("budget_spent_max_seconds", Json(r.budget_spent_max));
  Json sessions = Json::object();
  sessions.set("created", Json(static_cast<double>(r.stats.sessions_created)));
  sessions.set("evicted", Json(static_cast<double>(r.stats.sessions_evicted)));
  sessions.set("dedup_dropped",
               Json(static_cast<double>(r.stats.dedup_dropped)));
  sessions.set("shed_new_session",
               Json(static_cast<double>(r.stats.shed_new_session)));
  sessions.set("shed_queue_full",
               Json(static_cast<double>(r.stats.shed_queue_full)));
  sessions.set("shed_deadline",
               Json(static_cast<double>(r.stats.shed_deadline)));
  sessions.set("shed_session_inflight",
               Json(static_cast<double>(r.stats.shed_session_inflight)));
  j.set("sessions", std::move(sessions));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t lanes = 4;
  std::size_t lane_queue = 64;
  std::size_t pool_sessions = 24;
  std::size_t requests_per_mode = 240;
  double overload_window = 1.0;
  double deadline = 120.0;
  double p99_bound = 2.5;
  double admission_deadline = -1.0;  // < 0: derive from p99_bound below
  std::uint64_t seed = 42;
  std::string mode_arg = "all";
  std::string output = "BENCH_sessions.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      lanes = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--lane-queue") == 0 && i + 1 < argc) {
      lane_queue =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      pool_sessions =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--requests-per-mode") == 0 &&
               i + 1 < argc) {
      requests_per_mode =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--overload-window") == 0 &&
               i + 1 < argc) {
      overload_window = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
      deadline = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--p99-bound") == 0 && i + 1 < argc) {
      p99_bound = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--admission-deadline") == 0 &&
               i + 1 < argc) {
      admission_deadline = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: session_load [--lanes N] [--lane-queue C] [--sessions S] "
          "[--requests-per-mode R] [--overload-window SECONDS] "
          "[--mode all|steady,bursty,diurnal,overload] [--deadline SECONDS] "
          "[--p99-bound SECONDS] [--admission-deadline SECONDS] [--seed S] "
          "[--output PATH]\n");
      return 2;
    }
  }
  if (lanes == 0) lanes = 1;
  if (requests_per_mode == 0) requests_per_mode = 1;
  const auto mode_on = [&](const char* m) {
    return mode_arg == "all" || mode_arg.find(m) != std::string::npos;
  };

  const pkb::bench::Setup setup = pkb::bench::make_setup();
  pkb::bench::print_header("session serving (open-loop load + admission)",
                           setup);
  pkb::rag::AugmentedWorkflow workflow(*setup.db,
                                       pkb::rag::PipelineArm::RagRerank,
                                       setup.model, setup.retriever);
  res::ResilienceOptions ropts;
  ropts.request_deadline_seconds = deadline;
  ropts.seed = seed;
  res::Resilience engine(ropts);

  // --- Calibration: closed-loop mean turn time -> capacity estimate. ---
  double mean_turn_seconds;
  {
    pkb::obs::global_metrics().reset();
    ServerOptions sopts;
    sopts.workers = 1;
    sopts.answer_cache_capacity = 0;
    sopts.llm_latency_scale = kLlmLatencyScale;
    sopts.resilience = &engine;
    Server server(workflow, sopts);
    SessionOptions mopts;
    mopts.lanes = 1;
    SessionManager manager(server, mopts);
    const std::size_t warm = 12;
    pkb::util::Stopwatch watch;
    for (std::size_t i = 0; i < warm; ++i) {
      const TurnOutcome out =
          manager.ask("cal" + std::to_string(i % 3), question_text(i));
      if (out.shed()) --i;  // calibration turns must all run
    }
    mean_turn_seconds = watch.seconds() / static_cast<double>(warm);
  }
  const double capacity_qps =
      static_cast<double>(lanes) / mean_turn_seconds;
  std::printf("calibration: mean turn %.1f ms -> capacity estimate %.0f QPS "
              "(%zu lanes)\n\n",
              mean_turn_seconds * 1e3, capacity_qps, lanes);

  SessionOptions mopts;
  mopts.lanes = lanes;
  mopts.lane_queue_capacity = lane_queue;
  mopts.admission_deadline_seconds =
      admission_deadline < 0.0 ? p99_bound * 0.5 : admission_deadline;
  mopts.initial_turn_seconds_estimate = mean_turn_seconds;
  mopts.max_history_turns = 2;

  std::mt19937_64 rng(seed);
  SessionPicker picker(rng, pool_sessions);

  std::vector<ModeResult> results;
  if (mode_on("steady")) {
    results.push_back(run_mode(
        "steady", workflow, engine, mopts,
        gen_steady(rng, picker, capacity_qps, requests_per_mode)));
    print_mode(results.back());
  }
  if (mode_on("bursty")) {
    results.push_back(run_mode(
        "bursty", workflow, engine, mopts,
        gen_bursty(rng, picker, capacity_qps, requests_per_mode)));
    print_mode(results.back());
  }
  if (mode_on("diurnal")) {
    results.push_back(run_mode(
        "diurnal", workflow, engine, mopts,
        gen_diurnal(rng, picker, capacity_qps, requests_per_mode)));
    print_mode(results.back());
  }
  const ModeResult* overload = nullptr;
  if (mode_on("overload")) {
    results.push_back(run_mode(
        "overload", workflow, engine, mopts,
        gen_overload(rng, picker, capacity_qps, overload_window)));
    print_mode(results.back());
    overload = &results.back();
    for (std::size_t i = 0; i < overload->rungs.size(); ++i) {
      const RungResult& rr = overload->rungs[i];
      std::printf("    rung %.1fx: %4zu arrivals | shed %5.1f%% | "
                  "p99 %6.1f ms\n",
                  kOverloadMultipliers[i], rr.arrivals, rr.shed_rate * 100.0,
                  rr.p99 * 1e3);
    }
  }

  // --- Gates (evaluated when the overload ladder ran). ---
  double min_answered_rate = 1.0;
  std::size_t deadline_violations = 0;
  for (const ModeResult& r : results) {
    if (r.admitted > 0) {
      min_answered_rate = std::min(min_answered_rate, r.answered_rate);
    }
    if (r.budget_spent_max > deadline + 1e-9) ++deadline_violations;
  }
  int knee = -1;
  double knee_offered = 0.0, knee_shed = 0.0, knee_p99 = 0.0;
  bool monotone_shed = true;
  bool p99_bounded = true;
  if (overload != nullptr) {
    for (std::size_t i = 0; i < overload->rungs.size(); ++i) {
      const RungResult& rr = overload->rungs[i];
      if (knee < 0 && rr.shed_rate > kKneeShedRate) {
        knee = static_cast<int>(i);
        knee_offered = kOverloadMultipliers[i] * capacity_qps;
        knee_shed = rr.shed_rate;
        knee_p99 = rr.p99;
      }
      if (i > 0 && rr.shed_rate + kMonotoneTolerance <
                       overload->rungs[i - 1].shed_rate) {
        monotone_shed = false;
      }
      if (rr.admitted > 0 && rr.p99 > p99_bound) p99_bounded = false;
    }
  }
  const bool shed_before_collapse =
      overload == nullptr || (knee >= 0 && p99_bounded);
  const bool ok = min_answered_rate >= 0.99 && deadline_violations == 0 &&
                  shed_before_collapse && monotone_shed;

  if (overload != nullptr) {
    std::string knee_desc = "not reached";
    if (knee >= 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f QPS offered", knee_offered);
      knee_desc = buf;
    }
    std::printf("\nknee: %s | answered %.1f%% (gate >= 99%%) | deadline "
                "violations %zu | monotone shed %s | p99 bounded %s\n",
                knee_desc.c_str(), min_answered_rate * 100.0,
                deadline_violations, monotone_shed ? "yes" : "NO",
                p99_bounded ? "yes" : "NO");
  }

  using pkb::util::Json;
  Json config = Json::object();
  config.set("lanes", Json(static_cast<double>(lanes)));
  config.set("lane_queue_capacity", Json(static_cast<double>(lane_queue)));
  config.set("session_pool", Json(static_cast<double>(pool_sessions)));
  config.set("requests_per_mode",
             Json(static_cast<double>(requests_per_mode)));
  config.set("overload_window_seconds", Json(overload_window));
  config.set("deadline_seconds", Json(deadline));
  config.set("p99_bound_seconds", Json(p99_bound));
  config.set("admission_deadline_seconds",
             Json(mopts.admission_deadline_seconds));
  config.set("seed", Json(static_cast<double>(seed)));
  config.set("llm_latency_scale", Json(kLlmLatencyScale));
  config.set("capacity_qps_estimate", Json(capacity_qps));
  config.set("mean_turn_seconds", Json(mean_turn_seconds));

  Json modes = Json::array();
  for (const ModeResult& r : results) modes.push_back(mode_json(r));

  Json report = Json::object();
  report.set("config", std::move(config));
  report.set("modes", std::move(modes));
  if (overload != nullptr) {
    Json rungs = Json::array();
    for (std::size_t i = 0; i < overload->rungs.size(); ++i) {
      const RungResult& rr = overload->rungs[i];
      Json rj = Json::object();
      rj.set("multiplier", Json(kOverloadMultipliers[i]));
      rj.set("offered_qps", Json(kOverloadMultipliers[i] * capacity_qps));
      rj.set("arrivals", Json(static_cast<double>(rr.arrivals)));
      rj.set("admitted", Json(static_cast<double>(rr.admitted)));
      rj.set("shed", Json(static_cast<double>(rr.shed)));
      rj.set("shed_rate", Json(rr.shed_rate));
      rj.set("p99_seconds", Json(rr.p99));
      rungs.push_back(std::move(rj));
    }
    Json ov = Json::object();
    ov.set("rungs", std::move(rungs));
    ov.set("knee_offered_qps", Json(knee >= 0 ? knee_offered : 0.0));
    ov.set("knee_shed_rate", Json(knee >= 0 ? knee_shed : 0.0));
    ov.set("knee_p99_seconds", Json(knee >= 0 ? knee_p99 : 0.0));
    report.set("overload", std::move(ov));
  }
  Json gates = Json::object();
  gates.set("answered_rate", Json(min_answered_rate));
  gates.set("deadline_violations",
            Json(static_cast<double>(deadline_violations)));
  gates.set("shed_before_collapse", Json(shed_before_collapse));
  gates.set("monotone_shed", Json(monotone_shed));
  gates.set("ok", Json(ok));
  report.set("gates", std::move(gates));

  std::ofstream out(output);
  out << report.dump(2) << "\n";
  std::printf("wrote %s\n", output.c_str());
  if (!out.good()) return 1;
  if (!ok) {
    std::fprintf(stderr, "session_load: overload gate FAILED\n");
    return 1;
  }
  return 0;
}
