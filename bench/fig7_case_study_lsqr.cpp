// Reproduces Fig 7 (Case Study 1): the non-square / rectangular matrix
// question.
//
// Paper: plain RAG failed to suggest the KSP solver for non-square systems
// (score 1); reranking-enhanced RAG retrieved the decisive context —
//   "KSP can also be used to solve least squares problems, using, for
//    example, KSPLSQR..."
// — and recommended KSPLSQR (score 4).
#include "bench_common.h"

#include "util/strings.h"

namespace {

void show_arm(const char* label, const pkb::rag::AugmentedWorkflow& workflow,
              const pkb::corpus::BenchmarkQuestion& q) {
  const pkb::rag::WorkflowOutcome outcome = workflow.ask(q.question);
  const pkb::eval::RubricVerdict verdict =
      pkb::eval::score_answer(q, outcome.response.text);
  std::printf("--- %s ---\n", label);
  std::printf("contexts passed to the LLM (attention window = 4):\n");
  std::size_t shown = 0;
  for (const auto& ctx : outcome.retrieval.contexts) {
    if (shown++ == 4) break;
    std::printf("  [%zu] %-44s (%s)\n", shown, ctx.doc->id.c_str(),
                ctx.via.c_str());
  }
  std::printf("response: %s\n", outcome.response.text.c_str());
  std::printf("score: (%d)  justification: %s\n\n", verdict.score,
              verdict.justification.c_str());
}

}  // namespace

int main() {
  using namespace pkb;
  bench::Setup s = bench::make_setup();
  bench::print_header(
      "Fig 7 / Case Study 1: rectangular (non-square) systems", s);

  const corpus::BenchmarkQuestion& q = corpus::krylov_benchmark()[1];  // Q2
  std::printf("Question: %s\n\n", q.question.c_str());

  const rag::AugmentedWorkflow rag_arm(*s.db, rag::PipelineArm::Rag, s.model,
                                       s.retriever);
  const rag::AugmentedWorkflow rerank_arm(*s.db, rag::PipelineArm::RagRerank,
                                          s.model, s.retriever);
  show_arm("LLM with RAG", rag_arm, q);
  show_arm("LLM with reranking-enhanced RAG", rerank_arm, q);

  // The decisive-context check the paper narrates: does the rerank arm's
  // window contain the KSPLSQR material?
  const rag::WorkflowOutcome rr = rerank_arm.ask(q.question);
  bool decisive_in_window = false;
  std::size_t i = 0;
  for (const auto& ctx : rr.retrieval.contexts) {
    if (i++ == 4) break;
    if (pkb::util::icontains(ctx.doc->text, "KSPLSQR")) {
      decisive_in_window = true;
    }
  }
  std::printf("decisive KSPLSQR context in rerank-RAG attention window: %s\n",
              decisive_in_window ? "yes" : "no");

  // Paper note: in the paper's (much larger, noisier) corpus, plain RAG
  // missed the decisive context and scored 1 while rerank-RAG scored 4. In
  // this reproduction's corpus plain RAG may already find KSPLSQR; the same
  // promoted-by-reranking mechanism is then visible on whichever benchmark
  // questions plain RAG does miss — list them:
  const eval::BenchmarkRunner runner = s.runner();
  const eval::ArmReport rag_report = runner.run(rag::PipelineArm::Rag);
  const eval::ArmReport rr_report = runner.run(rag::PipelineArm::RagRerank);
  std::printf("\nquestions where reranking rescued plain RAG in this run:\n");
  for (std::size_t i = 0; i < rag_report.outcomes.size(); ++i) {
    const int a = rag_report.outcomes[i].verdict.score;
    const int b = rr_report.outcomes[i].verdict.score;
    if (b > a) {
      std::printf("  Q%-3d %d -> %d  %s\n",
                  rag_report.outcomes[i].question_id, a, b,
                  pkb::util::ellipsize(rag_report.outcomes[i].question, 60)
                      .c_str());
    }
  }
  return 0;
}
