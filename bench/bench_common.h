#pragma once
// Shared setup for the figure/table reproduction benches: build the corpus
// and the RAG database once with the paper's headline configuration
// (GPT-4o-analogue model, text-embedding-3-large-analogue blend embedding,
// Flashrank-analogue reranker, K=8 -> L=4).

#include <cstdio>
#include <memory>
#include <string>

#include "corpus/generator.h"
#include "corpus/questions.h"
#include "eval/runner.h"
#include "rag/workflow.h"

namespace pkb::bench {

struct Setup {
  text::VirtualDir corpus;
  std::unique_ptr<rag::RagDatabase> db;
  llm::LlmConfig model;
  rag::RetrieverOptions retriever;

  [[nodiscard]] eval::BenchmarkRunner runner() const {
    return eval::BenchmarkRunner(*db, model, retriever);
  }
};

/// Build the headline configuration (quietly).
inline Setup make_setup(const std::string& embedder = "sim-embed-3-large",
                        const std::string& model = "sim-gpt-4o",
                        const std::string& reranker = "sim-flashrank") {
  Setup s;
  s.corpus = corpus::generate_corpus();
  rag::RagDatabaseOptions db_opts;
  db_opts.embedder = embedder;
  s.db = std::make_unique<rag::RagDatabase>(
      rag::RagDatabase::build(s.corpus, db_opts));
  s.model = llm::model_config(model);
  s.retriever.reranker = reranker;
  return s;
}

inline void print_header(const char* what, const Setup& s) {
  std::printf("=== %s ===\n", what);
  std::printf("corpus: %zu documents, %zu chunks | embedder %s | model %s | "
              "reranker %s | K=%zu L=%zu\n\n",
              s.db->source_count(), s.db->chunks().size(),
              s.db->embedder().name().c_str(), s.model.name.c_str(),
              s.retriever.reranker.c_str(), s.retriever.first_pass_k,
              s.retriever.final_l);
}

}  // namespace pkb::bench
