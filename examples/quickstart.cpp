// Quickstart: build the PETSc knowledge-base RAG database, ask one question
// through the full reranking-enhanced pipeline, and print the answer with
// its sources — the minimal end-to-end use of the library.
//
// Usage: example_quickstart ["your question about PETSc Krylov solvers"]

#include <cstdio>
#include <string>

#include "corpus/generator.h"
#include "rag/workflow.h"

int main(int argc, char** argv) {
  const std::string question =
      argc > 1 ? argv[1]
               : "Can I use KSP to solve a system where the matrix is not "
                 "square, only rectangular?";

  // 1) Generate the knowledge base (in the paper: the PETSc docs tree).
  const pkb::text::VirtualDir corpus = pkb::corpus::generate_corpus();

  // 2) Build the RAG database: load -> chunk -> embed -> index (Fig 3,
  //    "Generating the RAG databases").
  const pkb::rag::RagDatabase db = pkb::rag::RagDatabase::build(corpus);
  std::printf("knowledge base: %zu documents -> %zu chunks (embedder %s)\n\n",
              db.source_count(), db.chunks().size(),
              db.embedder().name().c_str());

  // 3) Assemble the augmented workflow: retrieval (K=8) + keyword search +
  //    reranking (L=4) + LLM + postprocessing (Fig 3, boxes 1-4).
  const pkb::rag::AugmentedWorkflow workflow(
      db, pkb::rag::PipelineArm::RagRerank,
      pkb::llm::model_config("sim-gpt-4o"));

  // 4) Ask.
  const pkb::rag::WorkflowOutcome outcome = workflow.ask(question);

  std::printf("Q: %s\n\nA: %s\n\n", question.c_str(),
              outcome.response.text.c_str());
  std::printf("retrieved contexts:\n");
  for (const auto& ctx : outcome.retrieval.contexts) {
    std::printf("  %-48s via %-8s score %.3f\n", ctx.doc->id.c_str(),
                ctx.via.c_str(), ctx.score);
  }
  std::printf("\nretrieval %.1f ms (rerank %.1f ms) | simulated LLM latency "
              "%.1f s | mode %s\n",
              outcome.retrieval.rag_seconds() * 1e3,
              outcome.retrieval.rerank_seconds * 1e3,
              outcome.response.latency_seconds,
              outcome.response.mode.c_str());
  return 0;
}
