// Example: run the three pipeline arms (baseline / RAG / rerank-enhanced
// RAG) over the 37-question Krylov benchmark and print a score dashboard
// with per-question rubric verdicts — the blind-review workflow of §V-A,
// fully automated.
//
// Usage: example_eval_dashboard [--model sim-gpt-4o] [--embedder sim-lsa-96]
//                               [--verbose]

#include <cstdio>
#include <cstring>
#include <string>

#include "corpus/generator.h"
#include "eval/runner.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  std::string model = "sim-gpt-4o";
  std::string embedder = "sim-embed-3-large";
  std::string reranker = "sim-flashrank";
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model = argv[++i];
    } else if (std::strcmp(argv[i], "--embedder") == 0 && i + 1 < argc) {
      embedder = argv[++i];
    } else if (std::strcmp(argv[i], "--reranker") == 0 && i + 1 < argc) {
      reranker = argv[++i];
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    }
  }

  std::printf("Building the PETSc knowledge base corpus...\n");
  const pkb::text::VirtualDir corpus = pkb::corpus::generate_corpus();
  pkb::rag::RagDatabaseOptions db_opts;
  db_opts.embedder = embedder;
  const pkb::rag::RagDatabase db = pkb::rag::RagDatabase::build(corpus, db_opts);
  std::printf("  %zu source documents -> %zu chunks (embedder %s)\n\n",
              db.source_count(), db.chunks().size(), db.embedder().name().c_str());

  pkb::rag::RetrieverOptions retriever_opts;
  retriever_opts.reranker = reranker;
  const pkb::eval::BenchmarkRunner runner(db, pkb::llm::model_config(model),
                                          retriever_opts);
  const auto baseline = runner.run(pkb::rag::PipelineArm::Baseline);
  const auto rag = runner.run(pkb::rag::PipelineArm::Rag);
  const auto rerank = runner.run(pkb::rag::PipelineArm::RagRerank);

  std::printf("%s\n", pkb::eval::render_score_distribution(baseline).c_str());
  std::printf("%s\n", pkb::eval::render_score_distribution(rag).c_str());
  std::printf("%s\n", pkb::eval::render_score_distribution(rerank).c_str());

  std::printf("--- baseline vs RAG (Fig 6a) ---\n%s\n",
              pkb::eval::render_comparison_table(baseline, rag).c_str());
  std::printf("--- baseline vs rerank-RAG (Fig 6b) ---\n%s\n",
              pkb::eval::render_comparison_table(baseline, rerank).c_str());
  std::printf("--- RAG vs rerank-RAG (Fig 6c) ---\n%s\n",
              pkb::eval::render_comparison_table(rag, rerank).c_str());

  if (verbose) {
    for (std::size_t i = 0; i < rerank.outcomes.size(); ++i) {
      const auto& b = baseline.outcomes[i];
      const auto& r = rag.outcomes[i];
      const auto& rr = rerank.outcomes[i];
      std::printf("Q%-3d [%d/%d/%d] %s\n", b.question_id, b.verdict.score,
                  r.verdict.score, rr.verdict.score, b.question.c_str());
      std::printf("  baseline(%s): %s\n", b.mode.c_str(),
                  pkb::util::ellipsize(b.answer, 140).c_str());
      std::printf("  rag(%s): %s\n", r.mode.c_str(),
                  pkb::util::ellipsize(r.answer, 140).c_str());
      std::printf("    ctx:");
      for (const auto& id : r.context_ids) std::printf(" %s", id.c_str());
      std::printf("\n  rerank(%s): %s\n", rr.mode.c_str(),
                  pkb::util::ellipsize(rr.answer, 140).c_str());
      std::printf("    ctx:");
      for (const auto& id : rr.context_ids) std::printf(" %s", id.c_str());
      std::printf("\n    verdict: %s\n", rr.verdict.justification.c_str());
    }
  }
  return 0;
}
