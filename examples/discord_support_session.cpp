// Full Fig 5 workflow, narrated: a user emails petsc-users, the poller
// notices, the email bot mirrors the thread into the developers' Discord
// forum, a developer invokes /reply, the chat bot drafts an answer with the
// augmented LLM, the developer revises then sends, and the reply lands back
// on the mailing list — with the safety invariant (nothing unvetted reaches
// the list) visible at every step.

#include <cstdio>

#include "bots/chat_bot.h"
#include "bots/email_bot.h"
#include "corpus/generator.h"
#include "rag/workflow.h"

namespace {

void narrate(const pkb::util::SimClock& clock, const char* what) {
  std::printf("[%s] %s\n", clock.timestamp().c_str(), what);
}

}  // namespace

int main() {
  using namespace pkb;

  // --- infrastructure ------------------------------------------------------
  pkb::util::SimClock clock;
  bots::DiscordServer server(&clock);
  server.create_channel("petsc-users-notification", bots::ChannelKind::Text,
                        /*is_private=*/true);
  server.create_channel("petsc-users-emails", bots::ChannelKind::Forum,
                        /*is_private=*/true);
  server.join("barry", /*is_developer=*/true);
  server.join("lois", /*is_developer=*/true);

  bots::MailingList list("petsc-users@mcs.anl.gov", &clock);
  bots::Mailbox bot_mailbox("petscbot@gmail.com");
  list.subscribe(&bot_mailbox);

  const std::string webhook = server.create_webhook("petsc-users-notification");
  bots::GmailPoller poller(&bot_mailbox, &server, webhook,
                           "petscbot@gmail.com");
  bots::EmailBot email_bot(&bot_mailbox, &server, "petsc-users-notification",
                           "petsc-users-emails");

  std::printf("building the RAG database...\n");
  const rag::RagDatabase db = rag::RagDatabase::build(corpus::generate_corpus());
  const rag::AugmentedWorkflow workflow(db, rag::PipelineArm::RagRerank,
                                        llm::model_config("sim-gpt-4o"));
  bots::ChatBot chat_bot(&workflow, &server, &list, "petsc-users-emails",
                         "petscbot@gmail.com");
  std::printf("\n");

  // --- arc 1: the user emails the list ------------------------------------
  clock.advance(9 * 3600);  // 09:00
  list.post("grad.student@univ.edu", "KSP for non-square systems",
            "Hi all,\n"
            "Can I use KSP to solve a system where the matrix is not square, "
            "only rectangular? Must it be invertible too or does that depend "
            "on how you're using KSP?\n"
            "See https://urldefense.us/v3/__https://petsc.org/release__;"
            "Tok3n$ for what I already read.\n"
            "> (no earlier message)\n");
  narrate(clock, "user email posted to petsc-users");

  // --- arcs 2-3: poller -> webhook -> email bot -> forum post -------------
  clock.advance(300);  // the Apps Script polls every 5 minutes
  poller.poll();
  narrate(clock, "poller found unread mail; webhook notification sent");
  email_bot.process_notifications();
  narrate(clock, "email bot mirrored the thread into #petsc-users-emails");

  const bots::ForumPost* post =
      server.find_post("petsc-users-emails", "KSP for non-square systems");
  std::printf("    forum post: \"%s\"\n    body: %s\n\n", post->title.c_str(),
              post->messages[0].content.c_str());

  // --- arc 4: developer invokes /reply -------------------------------------
  clock.advance(600);
  const auto draft_id = chat_bot.handle_reply_command(post->id, "barry");
  narrate(clock, "barry invoked /reply; the chat bot drafted an answer:");
  const bots::Message* draft =
      server.find_message("petsc-users-emails", *draft_id);
  std::printf("    %s\n\n", draft->content.c_str());

  // --- arc 5: developer revises --------------------------------------------
  clock.advance(120);
  std::uint64_t revised_id = 0;
  chat_bot.press_revise(*draft_id, "barry",
                        "also mention that the preconditioner acts on the "
                        "normal equations",
                        &revised_id);
  narrate(clock, "barry pressed [revise] with guidance; new draft:");
  const bots::Message* revised =
      server.find_message("petsc-users-emails", revised_id);
  std::printf("    %s\n\n", revised->content.c_str());

  // --- arcs 6-7: send to the list ------------------------------------------
  clock.advance(60);
  chat_bot.press_send(revised_id, "barry");
  narrate(clock, "barry pressed [send]; the reply went to petsc-users:");
  const bots::Email& reply = list.archive().back();
  std::printf("    From: %s\n    Subject: %s\n    %s\n\n", reply.from.c_str(),
              reply.subject.c_str(), reply.body.c_str());

  // --- the no-loop guarantee ------------------------------------------------
  clock.advance(300);
  const bool notified = poller.poll();
  narrate(clock, notified
                     ? "ERROR: poller re-posted the bot's own email!"
                     : "poller correctly ignored the bot's own reply (no "
                       "repost loop)");

  std::printf("\nsummary: %zu emails on the list, %zu sent by the bot, all "
              "after developer vetting.\n",
              list.archive().size(), chat_bot.emails_sent());
  return 0;
}
