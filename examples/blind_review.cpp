// The §V-A evaluation methodology, end to end: run questions through two
// pipeline arms, store every interaction in the shared history, hand the
// anonymized, shuffled answers to blind scorers (who cannot see which
// pipeline produced what), record their rubric scores, and only then unblind
// and compare the pipelines.
//
// The "scorers" here are the computable Table-I rubric applied
// independently; with a generated corpus the rubric IS the expert judgment
// (DESIGN.md Sec 1).

#include <cstdio>
#include <map>

#include "corpus/generator.h"
#include "corpus/questions.h"
#include "eval/rubric.h"
#include "rag/workflow.h"
#include "util/stats.h"

int main() {
  using namespace pkb;

  std::printf("=== Blind-review workflow (Sec V-A) ===\n\n");
  const rag::RagDatabase db = rag::RagDatabase::build(corpus::generate_corpus());

  history::HistoryStore store;
  pkb::util::SimClock clock;

  // Phase 1: collect answers from two arms into the shared history.
  const std::size_t n_questions = 10;
  std::map<std::uint64_t, const corpus::BenchmarkQuestion*> key_of;
  for (const rag::PipelineArm arm :
       {rag::PipelineArm::Baseline, rag::PipelineArm::RagRerank}) {
    rag::AugmentedWorkflow workflow(db, arm, llm::model_config("sim-gpt-4o"));
    workflow.attach_history(&store, &clock);
    for (std::size_t i = 0; i < n_questions; ++i) {
      const corpus::BenchmarkQuestion& q = corpus::krylov_benchmark()[i];
      const rag::WorkflowOutcome outcome = workflow.ask(q.question);
      key_of[outcome.history_id] = &q;
    }
  }
  std::printf("phase 1: %zu interactions recorded (%zu questions x 2 "
              "pipelines)\n", store.size(), n_questions);

  // Phase 2: blind scoring. Scorers see shuffled, anonymized items only.
  for (const char* scorer : {"reviewer-A", "reviewer-B"}) {
    const auto batch = store.blind_batch(
        "", pkb::util::seed_from(scorer));  // all pipelines, scorer's order
    for (const history::BlindItem& item : batch) {
      const corpus::BenchmarkQuestion* q = key_of.at(item.record_id);
      const eval::RubricVerdict verdict =
          eval::score_answer(*q, item.response);
      store.record_score(item.record_id,
                         {scorer, verdict.score, verdict.justification});
    }
    std::printf("phase 2: %s scored %zu anonymized answers\n", scorer,
                batch.size());
  }

  // Phase 3: unblind and compare.
  std::printf("\nphase 3: unblinded results\n");
  for (const char* pipeline : {"baseline", "rag+rerank"}) {
    pkb::util::Summary scores;
    for (const history::InteractionRecord* record :
         store.by_pipeline(pipeline)) {
      const auto mean = store.mean_score(record->id);
      if (mean.has_value()) scores.add(*mean);
    }
    std::printf("  %-12s mean rubric score %.2f over %zu answers\n", pipeline,
                scores.mean(), scores.count());
  }

  std::printf("\nthe history database now holds every question, response, "
              "prompt, model, latency, and score — searchable:\n");
  for (const history::InteractionRecord* record : store.search("KSPLSQR")) {
    std::printf("  #%llu [%s] mentions KSPLSQR\n",
                static_cast<unsigned long long>(record->id),
                record->pipeline.c_str());
  }
  return 0;
}
