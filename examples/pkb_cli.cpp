// Command-line assistant (§III: "For developers, we could even provide
// command line tools and integrated development environment (IDE)
// extensions"). A small REPL over the augmented workflow: ask questions,
// switch arms, inspect retrieval, search the interaction history.
//
// Usage: example_pkb_cli            (interactive)
//        echo "question" | example_pkb_cli
//
// Commands:
//   :arm baseline|rag|rerank   switch pipeline arm
//   :contexts                  show the contexts of the last answer
//   :history <substring>       search past interactions
//   :metrics                   dump the metrics registry (Prometheus text)
//   :trace                     show the last request's span tree
//   :trace chrome              dump retained traces as Chrome trace JSON
//   :quit                      exit
//
// The span/metric vocabulary is documented in docs/OBSERVABILITY.md.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "corpus/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rag/workflow.h"
#include "util/strings.h"

namespace {

pkb::rag::PipelineArm parse_arm(std::string_view name,
                                pkb::rag::PipelineArm fallback) {
  if (name == "baseline") return pkb::rag::PipelineArm::Baseline;
  if (name == "rag") return pkb::rag::PipelineArm::Rag;
  if (name == "rerank") return pkb::rag::PipelineArm::RagRerank;
  std::printf("unknown arm '%.*s' (baseline|rag|rerank)\n",
              static_cast<int>(name.size()), name.data());
  return fallback;
}

}  // namespace

int main() {
  using namespace pkb;

  std::printf("petsc-kb assistant — building the knowledge base...\n");
  const rag::RagDatabase db = rag::RagDatabase::build(corpus::generate_corpus());
  std::printf("ready: %zu documents, %zu chunks. Ask about PETSc Krylov "
              "solvers; :quit to exit.\n\n",
              db.source_count(), db.chunks().size());

  history::HistoryStore store;
  pkb::util::SimClock clock;
  rag::PipelineArm arm = rag::PipelineArm::RagRerank;
  auto make_workflow = [&](rag::PipelineArm a) {
    auto wf = std::make_unique<rag::AugmentedWorkflow>(
        db, a, llm::model_config("sim-gpt-4o"));
    wf->attach_history(&store, &clock);
    return wf;
  };
  auto workflow = make_workflow(arm);
  rag::WorkflowOutcome last;

  std::string line;
  while (std::printf("pkb[%s]> ", std::string(rag::to_string(arm)).c_str()),
         std::fflush(stdout), std::getline(std::cin, line)) {
    const std::string_view input = pkb::util::trim(line);
    if (input.empty()) continue;
    if (input == ":quit" || input == ":q") break;
    if (input.starts_with(":arm ")) {
      const rag::PipelineArm next = parse_arm(input.substr(5), arm);
      if (next != arm) {
        arm = next;
        workflow = make_workflow(arm);
      }
      continue;
    }
    if (input == ":contexts") {
      if (last.retrieval.contexts.empty()) {
        std::printf("no contexts (baseline arm or no question yet)\n");
      }
      for (const auto& ctx : last.retrieval.contexts) {
        std::printf("  %-48s via %-8s score %.3f\n", ctx.doc->id.c_str(),
                    ctx.via.c_str(), ctx.score);
      }
      continue;
    }
    if (input == ":metrics") {
      std::printf("%s", obs::global_metrics().prometheus_text().c_str());
      continue;
    }
    if (input == ":trace") {
      const std::optional<obs::Trace> trace = obs::global_tracer().latest();
      if (!trace.has_value()) {
        std::printf("no traces yet — ask a question first\n");
      } else {
        std::printf("trace #%llu\n%s",
                    static_cast<unsigned long long>(trace->id),
                    obs::render_tree(trace->root).c_str());
      }
      continue;
    }
    if (input == ":trace chrome") {
      std::printf("%s\n", obs::global_tracer().chrome_trace_json().c_str());
      continue;
    }
    if (input.starts_with(":history ")) {
      for (const auto* record : store.search(input.substr(9))) {
        std::printf("  #%llu [%s] %s\n",
                    static_cast<unsigned long long>(record->id),
                    record->pipeline.c_str(),
                    pkb::util::ellipsize(record->question, 70).c_str());
      }
      continue;
    }

    last = workflow->ask(input);
    std::printf("\n%s\n\n(mode %s | %zu contexts | simulated %.1f s)\n\n",
                last.response.text.c_str(), last.response.mode.c_str(),
                last.retrieval.contexts.size(),
                last.response.latency_seconds);
  }
  std::printf("\n%zu interactions recorded this session.\n", store.size());
  return 0;
}
