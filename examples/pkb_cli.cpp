// Command-line assistant (§III: "For developers, we could even provide
// command line tools and integrated development environment (IDE)
// extensions"). A small REPL over the augmented workflow: ask questions,
// switch arms, inspect retrieval, search the interaction history.
//
// Usage: example_pkb_cli            (interactive)
//        echo "question" | example_pkb_cli
//
// Commands:
//   :arm baseline|rag|rerank   switch pipeline arm
//   :contexts                  show the contexts of the last answer
//   :history <substring>       search past interactions
//   :metrics                   dump the metrics registry (Prometheus text)
//   :trace                     show the last request's span tree
//   :trace chrome              dump retained traces as Chrome trace JSON
//   :record [dir|off]          record every answer's stage trace to a dir
//   :replay <id> [--from=stage] [--set k=N|l=N|reranker=R|max_attended=N|
//                 model=M]      time-travel replay a recorded request
//   :rdiff                     full diff report of the last replay
//   :quit                      exit
//
// The span/metric vocabulary is documented in docs/OBSERVABILITY.md; the
// record/replay subsystem in docs/ARCHITECTURE.md.

#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "corpus/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rag/stage_graph.h"
#include "rag/workflow.h"
#include "replay/replay.h"
#include "replay/trace.h"
#include "util/strings.h"

namespace {

pkb::rag::PipelineArm parse_arm(std::string_view name,
                                pkb::rag::PipelineArm fallback) {
  if (name == "baseline") return pkb::rag::PipelineArm::Baseline;
  if (name == "rag") return pkb::rag::PipelineArm::Rag;
  if (name == "rerank") return pkb::rag::PipelineArm::RagRerank;
  std::printf("unknown arm '%.*s' (baseline|rag|rerank)\n",
              static_cast<int>(name.size()), name.data());
  return fallback;
}

/// Parse ":replay <id> [--from=stage] [--set key=value ...]". Returns
/// nullopt (after printing the problem) on a malformed request.
std::optional<std::pair<std::uint64_t, pkb::replay::ReplayOverrides>>
parse_replay(std::string_view args) {
  std::istringstream in{std::string(args)};
  std::uint64_t id = 0;
  if (!(in >> id) || id == 0) {
    std::printf("usage: :replay <id> [--from=stage] [--set key=value]\n");
    return std::nullopt;
  }
  pkb::replay::ReplayOverrides ov;
  std::string token;
  while (in >> token) {
    std::string kv;
    if (token.starts_with("--from=")) {
      kv = token.substr(7);
      const auto stage = pkb::rag::stage_from_name(kv);
      if (!stage.has_value()) {
        std::printf("unknown stage '%s' (embed|retrieve|rerank|prompt|"
                    "generate|postprocess)\n", kv.c_str());
        return std::nullopt;
      }
      ov.from = *stage;
      continue;
    }
    if (token == "--set" && (in >> kv)) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::printf("--set expects key=value, got '%s'\n", kv.c_str());
        return std::nullopt;
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "k") {
        ov.first_pass_k = std::stoul(value);
      } else if (key == "l") {
        ov.final_l = std::stoul(value);
      } else if (key == "reranker") {
        ov.reranker = value;
      } else if (key == "max_attended") {
        ov.max_attended = std::stoul(value);
      } else if (key == "model") {
        ov.model = value;
      } else {
        std::printf("unknown override '%s' "
                    "(k|l|reranker|max_attended|model)\n", key.c_str());
        return std::nullopt;
      }
      continue;
    }
    std::printf("unrecognized token '%s'\n", token.c_str());
    return std::nullopt;
  }
  return std::make_pair(id, std::move(ov));
}

}  // namespace

int main() {
  using namespace pkb;

  std::printf("petsc-kb assistant — building the knowledge base...\n");
  const rag::RagDatabase db = rag::RagDatabase::build(corpus::generate_corpus());
  std::printf("ready: %zu documents, %zu chunks. Ask about PETSc Krylov "
              "solvers; :quit to exit.\n\n",
              db.source_count(), db.chunks().size());

  history::HistoryStore store;
  pkb::util::SimClock clock;
  rag::PipelineArm arm = rag::PipelineArm::RagRerank;
  auto make_workflow = [&](rag::PipelineArm a) {
    auto wf = std::make_unique<rag::AugmentedWorkflow>(
        db, a, llm::model_config("sim-gpt-4o"));
    wf->attach_history(&store, &clock);
    return wf;
  };
  auto workflow = make_workflow(arm);
  rag::WorkflowOutcome last;
  std::unique_ptr<replay::TraceRecorder> recorder;
  replay::ReplayEngine engine(db);
  std::optional<replay::ReplayResult> last_replay;

  std::string line;
  while (std::printf("pkb[%s]> ", std::string(rag::to_string(arm)).c_str()),
         std::fflush(stdout), std::getline(std::cin, line)) {
    const std::string_view input = pkb::util::trim(line);
    if (input.empty()) continue;
    if (input == ":quit" || input == ":q") break;
    if (input.starts_with(":arm ")) {
      const rag::PipelineArm next = parse_arm(input.substr(5), arm);
      if (next != arm) {
        arm = next;
        workflow = make_workflow(arm);
      }
      continue;
    }
    if (input == ":contexts") {
      if (last.retrieval.contexts.empty()) {
        std::printf("no contexts (baseline arm or no question yet)\n");
      }
      for (const auto& ctx : last.retrieval.contexts) {
        std::printf("  %-48s via %-8s score %.3f\n", ctx.doc->id.c_str(),
                    ctx.via.c_str(), ctx.score);
      }
      continue;
    }
    if (input == ":metrics") {
      std::printf("%s", obs::global_metrics().prometheus_text().c_str());
      continue;
    }
    if (input == ":trace") {
      const std::optional<obs::Trace> trace = obs::global_tracer().latest();
      if (!trace.has_value()) {
        std::printf("no traces yet — ask a question first\n");
      } else {
        std::printf("trace #%llu\n%s",
                    static_cast<unsigned long long>(trace->id),
                    obs::render_tree(trace->root).c_str());
      }
      continue;
    }
    if (input == ":trace chrome") {
      std::printf("%s\n", obs::global_tracer().chrome_trace_json().c_str());
      continue;
    }
    if (input == ":record" || input.starts_with(":record ")) {
      const std::string_view arg =
          input == ":record" ? std::string_view{} : input.substr(8);
      if (arg == "off") {
        recorder.reset();
        std::printf("recording off\n");
      } else {
        replay::RecorderOptions opts;
        if (!arg.empty()) opts.dir = std::string(pkb::util::trim(arg));
        recorder = std::make_unique<replay::TraceRecorder>(opts);
        std::printf("recording stage traces to %s/\n",
                    recorder->options().dir.c_str());
      }
      continue;
    }
    if (input.starts_with(":replay ")) {
      auto parsed = parse_replay(input.substr(8));
      if (!parsed.has_value()) continue;
      const std::string dir =
          recorder != nullptr ? recorder->options().dir : "pkb_traces";
      try {
        const rag::StageTrace recorded = replay::TraceRecorder::load(
            replay::TraceRecorder::trace_path(dir, parsed->first));
        last_replay = engine.replay(recorded, parsed->second);
        std::printf("replayed #%llu from %s\n\n%s\n\n%s\n",
                    static_cast<unsigned long long>(recorded.id),
                    std::string(rag::to_string(last_replay->from)).c_str(),
                    last_replay->outcome.response.text.c_str(),
                    last_replay->diff.any() ? "DIFFERS from the recording "
                                              "(:rdiff for details)"
                                            : "matches the recording");
      } catch (const std::exception& e) {
        std::printf("replay failed: %s\n", e.what());
      }
      continue;
    }
    if (input == ":rdiff") {
      if (!last_replay.has_value()) {
        std::printf("no replay yet — :replay <id> first\n");
      } else {
        const std::string summary = last_replay->diff.summary();
        std::printf("%s%s", summary.c_str(),
                    summary.ends_with('\n') ? "" : "\n");
      }
      continue;
    }
    if (input.starts_with(":history ")) {
      for (const auto* record : store.search(input.substr(9))) {
        std::printf("  #%llu [%s] %s\n",
                    static_cast<unsigned long long>(record->id),
                    record->pipeline.c_str(),
                    pkb::util::ellipsize(record->question, 70).c_str());
      }
      continue;
    }

    if (recorder != nullptr) {
      rag::StageTrace trace;
      last = workflow->ask(input, nullptr, &trace);
      const std::uint64_t id = recorder->record(std::move(trace));
      std::printf("[recorded trace #%llu]\n",
                  static_cast<unsigned long long>(id));
    } else {
      last = workflow->ask(input);
    }
    std::printf("\n%s\n\n(mode %s | %zu contexts | simulated %.1f s)\n\n",
                last.response.text.c_str(), last.response.mode.c_str(),
                last.retrieval.contexts.size(),
                last.response.latency_seconds);
  }
  std::printf("\n%zu interactions recorded this session.\n", store.size());
  return 0;
}
