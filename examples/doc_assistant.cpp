// Domain (b) of Fig 2 — "Documentation and tutorials": an assistant that
// scans the generated manual pages for gaps (missing synopsis, missing
// options, thin notes, missing cross-references), drafts an improved page
// with the LLM for the worst offenders, verifies any code in the draft with
// the postprocessor, and emits a merge-request-style review queue.
//
// This demonstrates the paper's "knowledge flow" direction: moving
// information from the unofficial knowledge base (FAQ/chapters) into the
// official manual pages, with every change going through human review.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "corpus/api_spec.h"
#include "corpus/generator.h"
#include "post/postprocessor.h"
#include "rag/prompts.h"
#include "rag/workflow.h"

namespace {

struct PageAudit {
  const pkb::corpus::ApiSpec* spec = nullptr;
  std::vector<std::string> gaps;
  int severity = 0;
};

PageAudit audit(const pkb::corpus::ApiSpec& spec) {
  PageAudit a;
  a.spec = &spec;
  if (spec.synopsis.empty() && spec.kind == pkb::corpus::ApiKind::Function) {
    a.gaps.push_back("missing synopsis");
    a.severity += 3;
  }
  if (spec.options.empty() &&
      (spec.kind == pkb::corpus::ApiKind::SolverType ||
       spec.kind == pkb::corpus::ApiKind::PcType)) {
    a.gaps.push_back("no options database keys documented");
    a.severity += 2;
  }
  if (spec.notes.size() < 2) {
    a.gaps.push_back("notes section is thin (single paragraph)");
    a.severity += 1;
  }
  if (spec.see_also.size() < 2) {
    a.gaps.push_back("fewer than two cross-references");
    a.severity += 1;
  }
  return a;
}

}  // namespace

int main() {
  using namespace pkb;

  std::printf("=== PETSc documentation assistant ===\n\n");
  std::printf("auditing %zu manual pages...\n", corpus::api_table().size());

  std::vector<PageAudit> audits;
  for (const corpus::ApiSpec& spec : corpus::api_table()) {
    PageAudit a = audit(spec);
    if (!a.gaps.empty()) audits.push_back(std::move(a));
  }
  std::sort(audits.begin(), audits.end(),
            [](const PageAudit& x, const PageAudit& y) {
              return x.severity > y.severity;
            });
  std::printf("%zu pages have documentation gaps.\n\n", audits.size());

  const rag::RagDatabase db = rag::RagDatabase::build(corpus::generate_corpus());
  const rag::AugmentedWorkflow workflow(db, rag::PipelineArm::RagRerank,
                                        llm::model_config("sim-gpt-4o"));

  const std::size_t n_drafts = std::min<std::size_t>(3, audits.size());
  std::printf("drafting updates for the %zu worst pages (each draft enters "
              "the merge-request review queue):\n\n", n_drafts);

  std::size_t clean_drafts = 0;
  for (std::size_t i = 0; i < n_drafts; ++i) {
    const PageAudit& a = audits[i];
    std::printf("--- MR draft %zu: %s (severity %d) ---\n", i + 1,
                a.spec->name.c_str(), a.severity);
    for (const std::string& gap : a.gaps) {
      std::printf("  gap: %s\n", gap.c_str());
    }
    const std::string question =
        "Improve the documentation for " + a.spec->name +
        ": summarize what it does, when to use it, and its most important "
        "related options and functions.";
    const rag::WorkflowOutcome outcome = workflow.ask(question);
    std::printf("  draft notes addition:\n    %s\n",
                outcome.response.text.c_str());

    // Verify any code in the draft before it can enter review (Sec III-E).
    const post::ProcessedOutput processed =
        post::postprocess_llm_output(outcome.response.text);
    if (processed.all_code_ok) {
      ++clean_drafts;
      std::printf("  code check: OK -> queued for human review\n\n");
    } else {
      std::printf("  code check: FAILED -> draft rejected automatically\n\n");
    }
  }

  std::printf("review queue: %zu of %zu drafts passed automatic checks; a "
              "human developer must approve each before the official "
              "knowledge base changes.\n",
              clean_drafts, n_drafts);
  return 0;
}
